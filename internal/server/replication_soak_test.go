package server_test

// Replication soak (ISSUE 10 satellite 1): a durable primary is driven by a
// randomized mutation stream over real HTTP while two followers — one
// durable, one in-memory — replicate from its WAL feed. Compactions land
// mid-run, the durable follower is stopped and restarted from its own
// journal mid-stream, and at the end both followers must stand at the
// primary's exact epoch and answer every sampled pair like a BFS oracle
// over the stream's ground-truth edge set. Run under -race: the follower
// loop, the HTTP handlers, and the registry swaps all overlap here.

import (
	"context"
	"encoding/json"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"kreach"
	"kreach/internal/gen"
	"kreach/internal/graph"
	"kreach/internal/server"
	"kreach/internal/workload"
)

// replOptions pins the index shape every replication test shares; K must
// match on both sides or answers legitimately differ.
var replOptions = kreach.DynamicOptions{K: 3, Seed: 11, CompactRatio: 1e9}

// replGraph is the shared base: one structural family scaled far down so
// the full-pair oracle stays cheap.
func replGraph(t *testing.T) (*graph.Graph, *kreach.Graph) {
	t.Helper()
	spec, ok := gen.Dataset("CiteSeer")
	if !ok {
		t.Fatal("unknown dataset CiteSeer")
	}
	spec = spec.Scaled(60)
	ig := spec.Generate()
	return ig, kreach.WrapInternal(ig)
}

// newReplPrimary opens a durable mutable dataset over base and serves it —
// mutations, stats, and the WAL feed — from one httptest server.
func newReplPrimary(t *testing.T, base *kreach.Graph, dir string, retain int) *httptest.Server {
	t.Helper()
	dyn, rg, w, err := kreach.OpenDurableDynamicIndex(base, replOptions, kreach.DurableOptions{
		Dir: dir, Sync: kreach.SyncAlways, RetainEpochs: retain,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	reg := server.NewRegistry()
	if err := reg.Add(&server.Dataset{Name: "dyn", Graph: rg, Reacher: dyn, WAL: w}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(reg, server.Config{}))
	t.Cleanup(ts.Close)
	return ts
}

// replFollower is one follower under test: the Follower itself, its own
// registry and HTTP server (so queries travel the same path clients use),
// and the replication loop's lifecycle handles.
type replFollower struct {
	f       *server.Follower
	reg     *server.Registry
	ts      *httptest.Server
	cancel  context.CancelFunc
	done    chan struct{}
	stopped bool
}

// newReplFollower bootstraps a follower (durable when walDir is set) and
// serves its dataset, but does not start the replication loop.
func newReplFollower(t *testing.T, primaryURL string, base *kreach.Graph, walDir string) *replFollower {
	t.Helper()
	reg := server.NewRegistry()
	f, err := server.NewFollower(server.FollowerConfig{
		Primary:      primaryURL,
		Dataset:      "dyn",
		Registry:     reg,
		Options:      replOptions,
		WALDir:       walDir,
		Sync:         kreach.SyncAlways,
		PollWait:     250 * time.Millisecond,
		RetryBackoff: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := f.Bootstrap(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Add(ds); err != nil {
		t.Fatal(err)
	}
	fl := &replFollower{f: f, reg: reg, ts: httptest.NewServer(server.New(reg, server.Config{}))}
	t.Cleanup(func() { fl.stop() })
	return fl
}

// run launches the replication loop.
func (fl *replFollower) run() {
	ctx, cancel := context.WithCancel(context.Background())
	fl.cancel = cancel
	fl.done = make(chan struct{})
	go func() {
		defer close(fl.done)
		fl.f.Run(ctx)
	}()
}

// stop tears the follower down completely: loop ended and drained, server
// closed, local journal closed — after it returns, nothing touches walDir.
func (fl *replFollower) stop() {
	if fl.stopped {
		return
	}
	fl.stopped = true
	if fl.cancel != nil {
		fl.cancel()
		<-fl.done
	}
	fl.ts.Close()
	if w := fl.f.WAL(); w != nil {
		w.Close()
	}
}

// waitReplicated blocks until the follower's durable cursor stands at
// exactly epoch and it reports caught up. A cursor beyond epoch is an
// instant failure: a follower must never invent epochs the primary did not
// issue.
func waitReplicated(t *testing.T, f *server.Follower, epoch uint64, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		st := f.Status()
		if st.LastAppliedEpoch > epoch {
			t.Fatalf("follower cursor %d beyond primary epoch %d: %+v", st.LastAppliedEpoch, epoch, st)
		}
		if st.LastAppliedEpoch == epoch && st.CaughtUp {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at epoch %d, want %d: %+v", st.LastAppliedEpoch, epoch, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestReplicationSoak(t *testing.T) {
	ig, base := replGraph(t)
	primary := newReplPrimary(t, base, t.TempDir(), 8)

	durDir := t.TempDir()
	durable := newReplFollower(t, primary.URL, base, durDir)
	durable.run()
	memory := newReplFollower(t, primary.URL, base, "")
	memory.run()

	// Mutation phase: single-op batches from the stream (its edge set is the
	// ground truth), a compaction roughly every third of the run, and a full
	// stop/restart of the durable follower at the halfway point.
	ms := workload.NewMutationStream(ig, 0x50AC, workload.MutationMix{Add: 0.55, Remove: 0.45})
	const ops = 120
	var lastEpoch uint64
	applied := 0
	for applied < ops {
		op := ms.Next()
		body := map[string]any{}
		switch op.Kind {
		case workload.OpAdd:
			body["add"] = [][2]int{{int(op.U), int(op.V)}}
		case workload.OpRemove:
			body["remove"] = [][2]int{{int(op.U), int(op.V)}}
		default:
			continue
		}
		status, resp := post(t, primary.URL+"/v1/datasets/dyn/edges", body)
		if status != http.StatusOK {
			t.Fatalf("edges status %d: %v", status, resp)
		}
		lastEpoch = field[uint64](t, resp, "epoch")
		applied++

		if applied%40 == 0 {
			status, resp := post(t, primary.URL+"/v1/datasets/dyn/compact", nil)
			if status != http.StatusOK {
				t.Fatalf("compact status %d: %v", status, resp)
			}
			lastEpoch = field[uint64](t, resp, "epoch")
		}
		if applied == ops/2 {
			// Kill the durable follower mid-stream and rebuild it over the
			// same journal: the restart must resume from its own durable
			// cursor, not from zero.
			atStop := durable.f.Status().LastAppliedEpoch
			durable.stop()
			durable = newReplFollower(t, primary.URL, base, durDir)
			resumed := durable.f.Status().LastAppliedEpoch
			if resumed == 0 || resumed > atStop {
				t.Fatalf("restarted follower resumed at epoch %d, stopped at %d", resumed, atStop)
			}
			durable.run()
		}
	}

	waitReplicated(t, durable.f, lastEpoch, 30*time.Second)
	waitReplicated(t, memory.f, lastEpoch, 30*time.Second)

	// Answer exactness: sampled pairs against a BFS oracle over the stream's
	// final edge set, asked over HTTP on the primary and both followers.
	final := graph.FromEdges(ig.NumVertices(), ms.Edges())
	sc := graph.NewBFSScratch(final.NumVertices())
	rng := rand.New(rand.NewPCG(0x50AC, 2))
	n := final.NumVertices()
	servers := map[string]string{
		"primary":          primary.URL,
		"durable-follower": durable.ts.URL,
		"memory-follower":  memory.ts.URL,
	}
	for i := 0; i < 300; i++ {
		s, d := rng.IntN(n), rng.IntN(n)
		want := graph.KHopReach(final, graph.Vertex(s), graph.Vertex(d), replOptions.K, sc)
		for label, url := range servers {
			if got := reachable(t, url, s, d); got != want {
				t.Fatalf("%s: reach(%d,%d) = %v, oracle %v (epoch %d)", label, s, d, got, want, lastEpoch)
			}
		}
	}

	// The soak's accounting must show real replication happened: records on
	// both followers, and at least one shipped snapshot on the cold-started
	// in-memory one.
	if st := durable.f.Status(); st.RecordsApplied == 0 {
		t.Errorf("durable follower applied no records: %+v", st)
	}
	if st := memory.f.Status(); st.RecordsApplied == 0 || st.SnapshotsLoaded == 0 {
		t.Errorf("memory follower missed records or snapshot: %+v", st)
	}
}

// TestFollowerRejectsLocalWrites: a follower dataset answers queries but
// 409s mutations and compactions — local writes would fork the epoch
// history the feed keeps exact.
func TestFollowerRejectsLocalWrites(t *testing.T) {
	_, base := replGraph(t)
	primary := newReplPrimary(t, base, t.TempDir(), 4)
	fl := newReplFollower(t, primary.URL, base, "")

	if status, _ := post(t, fl.ts.URL+"/v1/reach", map[string]any{"s": 0, "t": 1}); status != http.StatusOK {
		t.Fatalf("follower reach status %d, want 200", status)
	}
	status, body := post(t, fl.ts.URL+"/v1/datasets/dyn/edges", map[string]any{
		"add": [][2]int{{0, 1}},
	})
	if status != http.StatusConflict {
		t.Fatalf("follower edges status %d: %v, want 409", status, body)
	}
	status, body = post(t, fl.ts.URL+"/v1/datasets/dyn/compact", nil)
	if status != http.StatusConflict {
		t.Fatalf("follower compact status %d: %v, want 409", status, body)
	}
}

// TestFollowerStatsSection: the follower's /v1/stats dataset entry carries
// the replication block the router's lag demotion reads.
func TestFollowerStatsSection(t *testing.T) {
	_, base := replGraph(t)
	primary := newReplPrimary(t, base, t.TempDir(), 4)

	status, resp := post(t, primary.URL+"/v1/datasets/dyn/edges", map[string]any{
		"add": [][2]int{{0, 1}},
	})
	if status != http.StatusOK {
		t.Fatalf("edges status %d: %v", status, resp)
	}
	epoch := field[uint64](t, resp, "epoch")

	fl := newReplFollower(t, primary.URL, base, "")
	fl.run()
	waitReplicated(t, fl.f, epoch, 10*time.Second)

	httpResp, err := http.Get(fl.ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var stats struct {
		Datasets []struct {
			Name     string `json:"name"`
			ReadOnly bool   `json:"read_only"`
			Follower *struct {
				Primary          string  `json:"primary"`
				LastAppliedEpoch uint64  `json:"last_applied_epoch"`
				LagEpochs        uint64  `json:"lag_epochs"`
				LagSeconds       float64 `json:"lag_seconds"`
				CaughtUp         bool    `json:"caught_up"`
				RecordsApplied   uint64  `json:"records_applied"`
			} `json:"follower"`
		} `json:"datasets"`
	}
	if err := json.NewDecoder(httpResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Datasets) != 1 || stats.Datasets[0].Follower == nil {
		t.Fatalf("no follower section in stats: %+v", stats.Datasets)
	}
	ds := stats.Datasets[0]
	if !ds.ReadOnly {
		t.Error("follower dataset not marked read_only in stats")
	}
	fs := ds.Follower
	if fs.Primary != primary.URL || fs.LastAppliedEpoch != epoch || !fs.CaughtUp || fs.LagEpochs != 0 {
		t.Errorf("follower stats block: %+v, want primary %s at epoch %d caught up", fs, primary.URL, epoch)
	}
}
