// Package server implements the kreachd query-serving layer: an HTTP/JSON
// API over a registry of named graph+index pairs. It is the first step
// toward the ROADMAP's production serving architecture — every handler is
// safe for concurrent use because the underlying kreach query methods are,
// and /v1/batch rides the library's ReachBatch worker pool so a single
// request saturates the machine.
//
// Endpoints:
//
//	POST /v1/reach   {"graph":"name","s":0,"t":5,"k":3}        single query
//	POST /v1/batch   {"graph":"name","pairs":[[0,5],[1,2]]}    many queries
//	GET  /v1/stats                                             registry metadata
//	GET  /healthz                                              liveness probe
//
// "graph" may be omitted when the registry holds a default dataset. "k" is
// only meaningful for multi-rung datasets (omitted = classic reachability);
// plain and (h,k) datasets answer for the k they were built with.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"kreach"
)

// Kind labels the index variant a dataset serves.
type Kind string

// Dataset kinds.
const (
	KindPlain Kind = "kreach"  // fixed-k Index (or n-reach when k = Unbounded)
	KindHK    Kind = "hkreach" // (h,k)-reach HKIndex
	KindMulti Kind = "multi"   // MultiIndex ladder, per-query k
)

// Dataset is one named graph plus exactly one of the three index variants.
// All fields are read-only after registration.
type Dataset struct {
	Name  string
	Graph *kreach.Graph
	Plain *kreach.Index
	HK    *kreach.HKIndex
	Multi *kreach.MultiIndex
}

// Kind reports which index variant the dataset holds.
func (d *Dataset) Kind() Kind {
	switch {
	case d.Multi != nil:
		return KindMulti
	case d.HK != nil:
		return KindHK
	default:
		return KindPlain
	}
}

func (d *Dataset) valid() error {
	if d.Name == "" {
		return fmt.Errorf("server: dataset has no name")
	}
	if d.Graph == nil {
		return fmt.Errorf("server: dataset %q has no graph", d.Name)
	}
	count := 0
	if d.Plain != nil {
		count++
	}
	if d.HK != nil {
		count++
	}
	if d.Multi != nil {
		count++
	}
	if count != 1 {
		return fmt.Errorf("server: dataset %q must hold exactly one index, has %d", d.Name, count)
	}
	return nil
}

// Registry holds the named datasets a server answers for. It is populated
// at startup and immutable afterwards, so lookups need no locking.
type Registry struct {
	byName map[string]*Dataset
	order  []string // registration order; order[0] is the default
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Dataset)}
}

// Add registers a dataset. The first dataset added becomes the default for
// requests that omit "graph".
func (r *Registry) Add(d *Dataset) error {
	if err := d.valid(); err != nil {
		return err
	}
	if _, dup := r.byName[d.Name]; dup {
		return fmt.Errorf("server: duplicate dataset %q", d.Name)
	}
	r.byName[d.Name] = d
	r.order = append(r.order, d.Name)
	return nil
}

// Names returns the dataset names in registration order.
func (r *Registry) Names() []string { return append([]string(nil), r.order...) }

// Lookup resolves a dataset by name; the empty name means the default
// (first-registered) dataset.
func (r *Registry) Lookup(name string) (*Dataset, error) {
	if name == "" {
		if len(r.order) == 0 {
			return nil, fmt.Errorf("server: no datasets loaded")
		}
		return r.byName[r.order[0]], nil
	}
	d, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("server: unknown graph %q", name)
	}
	return d, nil
}

// Config tunes a Server.
type Config struct {
	// Parallelism is the ReachBatch worker count for /v1/batch
	// (0 = GOMAXPROCS).
	Parallelism int
	// MaxBatch caps the pairs accepted by one /v1/batch request
	// (0 = DefaultMaxBatch).
	MaxBatch int
}

// DefaultMaxBatch is the /v1/batch pair cap when Config.MaxBatch is 0.
const DefaultMaxBatch = 1 << 20

// Server answers reachability queries for a registry of datasets. Create
// one with New; it is an http.Handler.
type Server struct {
	reg     *Registry
	cfg     Config
	maxBody int64 // request body cap, derived from MaxBatch
	mux     *http.ServeMux
}

// New builds a Server over reg.
func New(reg *Registry, cfg Config) *Server {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	s := &Server{reg: reg, cfg: cfg, mux: http.NewServeMux()}
	// A [s,t] pair of 32-bit ids serializes to at most ~24 bytes; 64 leaves
	// whitespace headroom. Bodies beyond the cap are rejected before the
	// decoder buffers them, so MaxBatch bounds memory, not just pair count.
	s.maxBody = 4096 + 64*int64(cfg.MaxBatch)
	s.mux.HandleFunc("POST /v1/reach", s.handleReach)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooLarge.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// checkVertex validates one endpoint against the dataset's graph.
func checkVertex(d *Dataset, label string, v int) error {
	if n := d.Graph.NumVertices(); v < 0 || v >= n {
		return fmt.Errorf("%s vertex %d out of range [0,%d)", label, v, n)
	}
	return nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
