package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"kreach"
	"kreach/internal/cache"
)

// Kind labels the index variant a dataset serves; it aliases the public
// package's IndexKind so Reacher.Stats().Kind flows straight through.
type Kind = kreach.IndexKind

// Dataset kinds, re-exported for this package's callers.
const (
	KindPlain   = kreach.KindPlain   // fixed-k Index (or n-reach when k = Unbounded)
	KindHK      = kreach.KindHK      // (h,k)-reach HKIndex
	KindMulti   = kreach.KindMulti   // MultiIndex ladder, per-query k
	KindDynamic = kreach.KindDynamic // mutable DynamicIndex, accepts edge mutations
)

// Dataset is one named graph plus one Reacher answering for it. A Dataset
// is an immutable snapshot: all fields are read-only after registration,
// and replacing a dataset means registering a whole new Dataset via
// Registry.Swap or Registry.Reload. Handlers resolve the snapshot once per
// request, so in-flight requests keep answering against the snapshot they
// started with even while a swap lands.
//
// Handlers dispatch through the Reacher interface and the capability
// accessors (Mutable, PerQueryK) — never through the index's concrete
// type — so adding an index variant means implementing kreach.Reacher, not
// growing per-kind switches across the serving layer.
//
// A mutable (dynamic) dataset bends the "immutable snapshot" framing
// deliberately: the Dataset cell (name, base graph, index identity) is
// still fixed, but the index's edge set evolves in place behind its own
// locks, and its epoch advances with every mutation batch so epoch-keyed
// cache entries follow along. Graph remains the immutable base the dynamic
// overlay was started from; live counts come from the Reacher's stats.
type Dataset struct {
	Name    string
	Graph   *kreach.Graph
	Reacher kreach.Reacher

	// Loader rebuilds this dataset from its source of truth (for kreachd,
	// the -dataset spec: graph and index files are re-read, indexes
	// rebuilt). A dataset with a nil Loader cannot be reloaded. When a
	// swapped-in replacement has a nil Loader it inherits the old one, so a
	// reloadable dataset stays reloadable.
	Loader func() (*Dataset, error)

	// WAL is the durability store backing a dynamic dataset, nil for
	// in-memory ones. The store is driven by the index itself (mutations
	// journal through it, compactions checkpoint it); the serving layer
	// only reads its counters for /v1/stats and carries the handle across
	// compaction swaps so the section survives snapshot replacement. It is
	// also the source the replication feed endpoint streams from.
	WAL *kreach.WAL

	// ReadOnly marks a follower-replicated dataset: its edge set is driven
	// by the primary's WAL feed, so client mutations and compactions are
	// refused with 409 — accepting them would fork the epoch history the
	// replication protocol keeps exact.
	ReadOnly bool

	// Follower is the replication driver behind a ReadOnly dataset; stats
	// and metrics read its lag counters through it. Nil on primaries.
	Follower *Follower
}

// Kind reports which index variant the dataset holds, as tagged by the
// Reacher itself.
func (d *Dataset) Kind() Kind { return d.Reacher.Stats().Kind }

// Epoch returns the process-unique generation of the dataset's index. The
// query cache embeds it in every key, so swapping in a new snapshot (whose
// index necessarily has a fresh generation) invalidates all cached answers
// for the dataset without touching the cache.
func (d *Dataset) Epoch() uint64 { return d.Reacher.Epoch() }

// Mutable reports whether the dataset serves a mutable index, and returns
// it for the write path (edge mutations, compaction) when so.
func (d *Dataset) Mutable() (*kreach.DynamicIndex, bool) {
	dyn, ok := d.Reacher.(*kreach.DynamicIndex)
	return dyn, ok
}

// Enumerator reports whether the dataset's Reacher supports k-hop
// neighborhood enumeration, and returns the capability for the
// /v1/neighbors path when so. Like Mutable and PerQueryK it is a
// behavioral probe: a future backend gains (or loses) the endpoint by
// implementing (or not implementing) kreach.NeighborEnumerator, with no
// serving-layer changes.
func (d *Dataset) Enumerator() (kreach.NeighborEnumerator, bool) {
	e, ok := d.Reacher.(kreach.NeighborEnumerator)
	return e, ok
}

// perQueryK is the capability contract of a Reacher that answers arbitrary
// per-query hop bounds (a rung ladder): it exposes its rungs and, crucially
// for the cache, its own request-bound canonicalization — two request ks
// with the same NormalizeK image always produce the same answer, so cache
// keys use the normalized bound. Detecting the capability behaviorally lets
// future ladder-like backends inherit it without touching the server.
type perQueryK interface {
	Rungs() []int
	NormalizeK(k int) int
}

// PerQueryK reports whether the dataset's Reacher answers arbitrary
// per-query hop bounds, as opposed to one fixed k.
func (d *Dataset) PerQueryK() bool {
	_, ok := d.Reacher.(perQueryK)
	return ok
}

// NormalizeK canonicalizes a per-query request bound via the Reacher's own
// rules; on fixed-k datasets it returns k unchanged (their cache keys do
// not carry a k at all).
func (d *Dataset) NormalizeK(k int) int {
	if pq, ok := d.Reacher.(perQueryK); ok {
		return pq.NormalizeK(k)
	}
	return k
}

// CheckK rejects a request hop bound the dataset cannot answer, before any
// cache or index work happens. A nil reqK (absent in the request body)
// always passes: it means the Reacher's native bound. Validation delegates
// to kreach.ResolveK, so it can never drift from what the index itself
// would accept.
func (d *Dataset) CheckK(reqK *int) error {
	if reqK == nil || d.PerQueryK() {
		return nil
	}
	_, err := kreach.ResolveK(d.Reacher.K(), *reqK)
	return err
}

func (d *Dataset) valid() error {
	if d.Name == "" {
		return fmt.Errorf("server: dataset has no name")
	}
	if d.Graph == nil {
		return fmt.Errorf("server: dataset %q has no graph", d.Name)
	}
	if d.Reacher == nil {
		return fmt.Errorf("server: dataset %q has no index", d.Name)
	}
	return nil
}

// slot is the mutable cell behind one dataset name: an atomically swappable
// snapshot pointer (readers never block) plus a mutex that serializes
// writers — reloads and swaps of this name — so a slow reload cannot
// silently clobber a snapshot swapped in while its loader was running.
type slot struct {
	ptr      atomic.Pointer[Dataset]
	reloadMu sync.Mutex
}

// Registry holds the named datasets a server answers for. The name set is
// fixed after startup, but each name's snapshot is hot-swappable: Swap and
// Reload publish a replacement Dataset with an RCU-style pointer store,
// while Lookup returns whichever snapshot is current at that instant.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]*slot
	order  []string // registration order; order[0] is the default
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*slot)}
}

// Add registers a dataset. The first dataset added becomes the default for
// requests that omit "graph".
func (r *Registry) Add(d *Dataset) error {
	if err := d.valid(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[d.Name]; dup {
		return fmt.Errorf("server: duplicate dataset %q", d.Name)
	}
	sl := &slot{}
	sl.ptr.Store(d)
	r.byName[d.Name] = sl
	r.order = append(r.order, d.Name)
	return nil
}

// Names returns the dataset names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// Lookup resolves the current snapshot of a dataset by name; the empty name
// means the default (first-registered) dataset. The returned Dataset is
// immutable — callers can keep using it across a concurrent Swap, which is
// exactly how handlers guarantee one request never mixes two snapshots.
func (r *Registry) Lookup(name string) (*Dataset, error) {
	sl, err := r.slotFor(name)
	if err != nil {
		return nil, err
	}
	return sl.ptr.Load(), nil
}

// ErrUnknownDataset reports a lookup for a name the registry never held.
var ErrUnknownDataset = errors.New("server: unknown graph")

func (r *Registry) slotFor(name string) (*slot, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if name == "" {
		if len(r.order) == 0 {
			return nil, fmt.Errorf("server: no datasets loaded")
		}
		return r.byName[r.order[0]], nil
	}
	sl, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownDataset, name)
	}
	return sl, nil
}

// Swap atomically replaces the snapshot registered under d.Name and returns
// the snapshot it displaced. The name must already be registered — Swap
// replaces datasets, it does not grow the name set. If d.Loader is nil the
// replacement inherits the old snapshot's loader. In-flight requests that
// already resolved the old snapshot finish against it; requests arriving
// after Swap returns see d. Swaps serialize with reloads of the same name:
// a Swap issued while a Reload is rebuilding waits and then lands after it,
// so the replacement cannot be silently clobbered by the reload's result.
func (r *Registry) Swap(d *Dataset) (*Dataset, error) {
	if err := d.valid(); err != nil {
		return nil, err
	}
	sl, err := r.slotFor(d.Name)
	if err != nil {
		return nil, err
	}
	sl.reloadMu.Lock()
	defer sl.reloadMu.Unlock()
	old := sl.ptr.Load()
	if d.Loader == nil {
		d.Loader = old.Loader
	}
	sl.ptr.Store(d)
	retireDisplaced(old, d)
	return old, nil
}

// retireDisplaced marks a displaced dynamic snapshot retired, so a
// mutation that resolved the old snapshot before the swap fails with
// ErrRetired (and retries against the new one) instead of landing on an
// unpublished index and silently vanishing. Queries against the old
// snapshot keep answering its frozen state.
func retireDisplaced(old, repl *Dataset) {
	if old == nil {
		return
	}
	oldDyn, ok := old.Mutable()
	if !ok {
		return
	}
	if newDyn, _ := repl.Mutable(); oldDyn != newDyn {
		oldDyn.Retire()
	}
}

// ErrSuperseded reports a SwapIf whose expected snapshot is no longer the
// published one — something else (a reload, another compaction) replaced
// it first. The caller should re-resolve and decide whether to retry.
var ErrSuperseded = errors.New("server: snapshot superseded before swap")

// SwapIf atomically replaces the snapshot under repl.Name only if the
// currently published snapshot is still expect; otherwise it stores
// nothing and returns ErrSuperseded. Compactions publish through it so a
// reload landing mid-rebuild cannot be clobbered by the (now stale)
// compacted snapshot — which would silently revert mutations already
// acknowledged against the reloaded dataset.
func (r *Registry) SwapIf(expect, repl *Dataset) error {
	if err := repl.valid(); err != nil {
		return err
	}
	sl, err := r.slotFor(repl.Name)
	if err != nil {
		return err
	}
	sl.reloadMu.Lock()
	defer sl.reloadMu.Unlock()
	old := sl.ptr.Load()
	if old != expect {
		return fmt.Errorf("%w: %q", ErrSuperseded, repl.Name)
	}
	if repl.Loader == nil {
		repl.Loader = old.Loader
	}
	sl.ptr.Store(repl)
	retireDisplaced(old, repl)
	return nil
}

// ErrNotReloadable reports a reload request for a dataset registered
// without a Loader.
var ErrNotReloadable = errors.New("server: dataset has no loader")

// Reload rebuilds the named dataset via its Loader and swaps the result in,
// returning the new snapshot. Reloads of one name are serialized; reloads
// of different names proceed independently. The loaded dataset must keep
// the same name (a loader that renames is a bug) but may change kind,
// graph, or index freely.
func (r *Registry) Reload(name string) (*Dataset, error) {
	sl, err := r.slotFor(name)
	if err != nil {
		return nil, err
	}
	sl.reloadMu.Lock()
	defer sl.reloadMu.Unlock()
	old := sl.ptr.Load()
	if old.Loader == nil {
		return nil, fmt.Errorf("%w: %q", ErrNotReloadable, old.Name)
	}
	d, err := old.Loader()
	if err != nil {
		return nil, fmt.Errorf("server: reloading %q: %w", old.Name, err)
	}
	if err := d.valid(); err != nil {
		return nil, err
	}
	if d.Name != old.Name {
		return nil, fmt.Errorf("server: loader for %q produced dataset %q", old.Name, d.Name)
	}
	if d.Loader == nil {
		d.Loader = old.Loader
	}
	sl.ptr.Store(d)
	retireDisplaced(old, d)
	return d, nil
}

// Config tunes a Server.
type Config struct {
	// Parallelism is the ReachBatch worker count for /v1/batch
	// (0 = GOMAXPROCS).
	Parallelism int
	// MaxBatch caps the pairs accepted by one /v1/batch request
	// (0 = DefaultMaxBatch).
	MaxBatch int
	// CacheEntries sizes the result cache (total entries; rounded so each
	// shard is a power of two). 0 means cache.DefaultCapacity; negative
	// disables caching entirely.
	CacheEntries int
	// CacheShards is the cache shard count (0 = derived from GOMAXPROCS).
	CacheShards int
	// Logger receives structured request logs and serving-layer warnings.
	// nil means discard — a library server stays silent unless its owner
	// hands it a logger (kreachd always does).
	Logger *slog.Logger
	// SlowQueryThreshold is the latency past which reach/batch/neighbors
	// requests are traced into the /v1/debug/slow ring.
	// 0 = DefaultSlowQueryThreshold; negative disables tracing.
	SlowQueryThreshold time.Duration
}

// DefaultMaxBatch is the /v1/batch pair cap when Config.MaxBatch is 0.
const DefaultMaxBatch = 1 << 20

// Server answers reachability queries for a registry of datasets. Create
// one with New; it is an http.Handler.
type Server struct {
	reg     *Registry
	cfg     Config
	maxBody int64 // request body cap, derived from MaxBatch
	mux     *http.ServeMux
	// cache is the epoch-keyed result cache shared by every dataset (nil
	// when disabled). Keys embed the snapshot epoch, so entries from a
	// replaced snapshot can never answer for its successor.
	cache *cache.Cache[queryKey, cachedAnswer]

	logger        *slog.Logger
	obs           *serverMetrics
	slowRing      *slowRing
	slowThreshold time.Duration
	ready         atomic.Bool
	draining      atomic.Bool
	startTime     time.Time
	idBase        string        // request-ID prefix, unique per process start
	reqSeq        atomic.Uint64 // request-ID sequence
}

// New builds a Server over reg.
func New(reg *Registry, cfg Config) *Server {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	s := &Server{reg: reg, cfg: cfg, mux: http.NewServeMux()}
	if cfg.CacheEntries >= 0 {
		s.cache = cache.New[queryKey, cachedAnswer](cache.Config{
			Capacity: cfg.CacheEntries,
			Shards:   cfg.CacheShards,
		})
	}
	s.logger = cfg.Logger
	if s.logger == nil {
		s.logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s.slowThreshold = cfg.SlowQueryThreshold
	if s.slowThreshold == 0 {
		s.slowThreshold = DefaultSlowQueryThreshold
	}
	s.slowRing = &slowRing{}
	s.startTime = time.Now()
	s.idBase = fmt.Sprintf("%x", s.startTime.UnixNano())
	s.obs = newServerMetrics(s)
	// A [s,t] pair of 32-bit ids serializes to at most ~24 bytes; 64 leaves
	// whitespace headroom. Bodies beyond the cap are rejected before the
	// decoder buffers them, so MaxBatch bounds memory, not just pair count.
	s.maxBody = 4096 + 64*int64(cfg.MaxBatch)
	s.mux.HandleFunc("POST /v1/reach", s.instrument("reach", true, s.handleReach))
	s.mux.HandleFunc("POST /v1/batch", s.instrument("batch", true, s.handleBatch))
	s.mux.HandleFunc("POST /v1/neighbors", s.instrument("neighbors", true, s.handleNeighbors))
	s.mux.HandleFunc("GET /v1/stats", s.instrument("stats", false, s.handleStats))
	s.mux.HandleFunc("GET /v1/datasets/{name}/wal", s.instrument("wal", false, s.handleWALFeed))
	s.mux.HandleFunc("POST /v1/datasets/{name}/reload", s.instrument("reload", false, s.handleReload))
	s.mux.HandleFunc("POST /v1/datasets/{name}/edges", s.instrument("edges", false, s.handleEdges))
	s.mux.HandleFunc("POST /v1/datasets/{name}/compact", s.instrument("compact", false, s.handleCompact))
	s.mux.HandleFunc("POST /v1/admin/drain", s.instrument("drain", false, s.handleDrain))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/debug/slow", s.handleDebugSlow)
	return s
}

// MarkReady flips /readyz to 200. kreachd calls it once every dataset —
// including WAL recovery — is loaded and published; until then the server
// answers queries for whatever is registered but reports itself not ready,
// so rolling deploys don't route traffic to a half-recovered process.
// MarkReady is a no-op once the server has started draining: a late
// recovery goroutine cannot re-admit traffic to a process on its way out.
func (s *Server) MarkReady() {
	if s.draining.Load() {
		return
	}
	s.ready.Store(true)
	s.obs.ready.Set(1)
}

// StartDrain flips /readyz to 503 while queries keep being served. Routers
// and load balancers that gate on readiness stop sending new traffic, the
// in-flight requests finish normally, and the process can then shut down
// without a single connection reset — the first half of a zero-error
// rolling restart. Draining is one-way: MarkReady cannot undo it.
func (s *Server) StartDrain() {
	s.draining.Store(true)
	s.ready.Store(false)
	s.obs.ready.Set(0)
}

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// InstanceID is the process-unique identity of this server, also carried
// by every response's X-Request-Id prefix, the /v1/stats server section
// and the kreach_server_build_info metric. Two replicas serving the same
// datasets always differ here, which is how a router (or an operator
// staring at two identical /v1/stats documents) tells them apart.
func (s *Server) InstanceID() string { return s.idBase }

// handleDrain is POST /v1/admin/drain: the HTTP face of StartDrain, for
// orchestrators that drain a replica before reloading or replacing it.
func (s *Server) handleDrain(w http.ResponseWriter, _ *http.Request) {
	s.StartDrain()
	writeJSON(w, http.StatusOK, map[string]string{"status": "draining"})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooLarge.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// checkVertex validates one endpoint against the dataset's graph.
func checkVertex(d *Dataset, label string, v int) error {
	if n := d.Graph.NumVertices(); v < 0 || v >= n {
		return fmt.Errorf("%s vertex %d out of range [0,%d)", label, v, n)
	}
	return nil
}

// handleHealthz is liveness: the process is up and serving HTTP. It never
// reports anything about data; use /readyz for that.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: 200 only after MarkReady (every dataset
// published, WAL recovery included), 503 before — load balancers should
// gate traffic on this, not on /healthz.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if !s.ready.Load() {
		status := "loading"
		if s.draining.Load() {
			status = "draining"
		}
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": status})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}
