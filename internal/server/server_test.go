package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"kreach"
	"kreach/internal/gen"
	"kreach/internal/graph"
	"kreach/internal/server"
)

// genGraph generates a small citation-family graph through the public API.
func genGraph(t *testing.T, seed uint64) (*kreach.Graph, *graph.Graph) {
	t.Helper()
	g := gen.Spec{Family: gen.Citation, N: 200, M: 700, Seed: seed, Window: 40}.Generate()
	return kreach.WrapInternal(g), g
}

// newTestServer builds a registry with one dataset of each kind over the
// same graph, so every handler path is reachable.
func newTestServer(t *testing.T, cfg server.Config) (*httptest.Server, *kreach.Graph) {
	t.Helper()
	g, _ := genGraph(t, 7)
	plain, err := kreach.BuildIndex(g, kreach.IndexOptions{K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	hk, err := kreach.BuildHKIndex(g, kreach.HKOptions{H: 2, K: 6})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := kreach.BuildMultiIndex(g, kreach.MultiOptions{Rungs: kreach.PowerOfTwoRungs(8), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	reg := server.NewRegistry()
	for _, d := range []*server.Dataset{
		{Name: "plain", Graph: g, Reacher: plain},
		{Name: "hk", Graph: g, Reacher: hk},
		{Name: "multi", Graph: g, Reacher: multi},
	} {
		if err := reg.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(server.New(reg, cfg))
	t.Cleanup(ts.Close)
	return ts, g
}

func post(t *testing.T, url string, body any) (int, map[string]json.RawMessage) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

func field[T any](t *testing.T, m map[string]json.RawMessage, key string) T {
	t.Helper()
	var v T
	raw, ok := m[key]
	if !ok {
		t.Fatalf("response missing %q: %v", key, m)
	}
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("field %q: %v", key, err)
	}
	return v
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

func TestStats(t *testing.T) {
	ts, g := newTestServer(t, server.Config{})
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Default  string `json:"default"`
		Datasets []struct {
			Name     string `json:"name"`
			Kind     string `json:"kind"`
			Vertices int    `json:"vertices"`
			Edges    int    `json:"edges"`
			K        *int   `json:"k"`
			H        *int   `json:"h"`
			Rungs    []int  `json:"rungs"`
		} `json:"datasets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Default != "plain" || len(body.Datasets) != 3 {
		t.Fatalf("stats = %+v", body)
	}
	kinds := map[string]string{}
	for _, d := range body.Datasets {
		kinds[d.Name] = d.Kind
		if d.Vertices != g.NumVertices() || d.Edges != g.NumEdges() {
			t.Errorf("dataset %s reports %d/%d, want %d/%d",
				d.Name, d.Vertices, d.Edges, g.NumVertices(), g.NumEdges())
		}
		switch d.Name {
		case "plain":
			if d.K == nil || *d.K != 4 {
				t.Errorf("plain k = %v", d.K)
			}
		case "hk":
			if d.H == nil || *d.H != 2 || d.K == nil || *d.K != 6 {
				t.Errorf("hk h/k = %v/%v", d.H, d.K)
			}
		case "multi":
			if len(d.Rungs) == 0 {
				t.Error("multi has no rungs")
			}
		}
	}
	if kinds["plain"] != "kreach" || kinds["hk"] != "hkreach" || kinds["multi"] != "multi" {
		t.Errorf("kinds = %v", kinds)
	}
}

func TestReachSingle(t *testing.T) {
	ts, g := newTestServer(t, server.Config{})
	plain, err := kreach.BuildIndex(g, kreach.IndexOptions{K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 25; s++ {
		for tt := 0; tt < 25; tt++ {
			status, body := post(t, ts.URL+"/v1/reach", map[string]any{"s": s, "t": tt})
			if status != http.StatusOK {
				t.Fatalf("status %d: %v", status, body)
			}
			if got, want := field[bool](t, body, "reachable"), plain.Reach(s, tt); got != want {
				t.Fatalf("reach(%d,%d) = %v, want %v", s, tt, got, want)
			}
		}
	}
	// Named graph + per-query k on the multi dataset.
	status, body := post(t, ts.URL+"/v1/reach", map[string]any{"graph": "multi", "s": 0, "t": 0, "k": 2})
	if status != http.StatusOK || field[string](t, body, "verdict") != "yes" {
		t.Fatalf("multi self query: status=%d body=%v", status, body)
	}
}

func TestReachErrors(t *testing.T) {
	ts, g := newTestServer(t, server.Config{})
	n := g.NumVertices()
	for _, tc := range []struct {
		name   string
		body   any
		status int
	}{
		{"unknown graph", map[string]any{"graph": "nope", "s": 0, "t": 1}, http.StatusNotFound},
		{"source out of range", map[string]any{"s": n, "t": 1}, http.StatusBadRequest},
		{"negative target", map[string]any{"s": 0, "t": -1}, http.StatusBadRequest},
		{"k on fixed-k dataset", map[string]any{"s": 0, "t": 1, "k": 9}, http.StatusBadRequest},
		{"unknown field", map[string]any{"s": 0, "t": 1, "bogus": true}, http.StatusBadRequest},
	} {
		status, body := post(t, ts.URL+"/v1/reach", tc.body)
		if status != tc.status {
			t.Errorf("%s: status %d, want %d (%v)", tc.name, status, tc.status, body)
		}
		if _, ok := body["error"]; !ok {
			t.Errorf("%s: no error message", tc.name)
		}
	}
	// Matching k on a fixed-k dataset is accepted.
	if status, body := post(t, ts.URL+"/v1/reach", map[string]any{"s": 0, "t": 1, "k": 4}); status != http.StatusOK {
		t.Errorf("matching k rejected: %d %v", status, body)
	}
	// Bad JSON.
	resp, err := http.Post(ts.URL+"/v1/reach", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("truncated JSON: status %d", resp.StatusCode)
	}
	// Wrong method.
	resp, err = http.Get(ts.URL + "/v1/reach")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/reach: status %d", resp.StatusCode)
	}
}

func TestBatchMatchesSequential(t *testing.T) {
	ts, g := newTestServer(t, server.Config{Parallelism: 4})
	plain, err := kreach.BuildIndex(g, kreach.IndexOptions{K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	var pairs [][2]int
	for s := 0; s < n; s += 3 {
		for tt := 0; tt < n; tt += 3 {
			pairs = append(pairs, [2]int{s, tt})
		}
	}
	status, body := post(t, ts.URL+"/v1/batch", map[string]any{"pairs": pairs})
	if status != http.StatusOK {
		t.Fatalf("status %d: %v", status, body)
	}
	results := field[[]bool](t, body, "results")
	if len(results) != len(pairs) {
		t.Fatalf("%d results for %d pairs", len(results), len(pairs))
	}
	for i, p := range pairs {
		if want := plain.Reach(p[0], p[1]); results[i] != want {
			t.Fatalf("pair %v = %v, want %v", p, results[i], want)
		}
	}
}

func TestBatchMultiVerdicts(t *testing.T) {
	ts, g := newTestServer(t, server.Config{})
	multi, err := kreach.BuildMultiIndex(g, kreach.MultiOptions{Rungs: kreach.PowerOfTwoRungs(8), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pairs := [][2]int{{0, 1}, {0, 0}, {5, 40}, {17, 3}}
	status, body := post(t, ts.URL+"/v1/batch", map[string]any{"graph": "multi", "pairs": pairs, "k": 3})
	if status != http.StatusOK {
		t.Fatalf("status %d: %v", status, body)
	}
	verdicts := field[[]string](t, body, "verdicts")
	results := field[[]bool](t, body, "results")
	for i, p := range pairs {
		verdict, _ := multi.Reach(p[0], p[1], 3)
		if verdicts[i] != verdict.String() {
			t.Errorf("pair %v verdict %q, want %q", p, verdicts[i], verdict)
		}
		if results[i] != (verdict != kreach.No) {
			t.Errorf("pair %v result %v inconsistent with verdict %q", p, results[i], verdicts[i])
		}
	}
}

func TestBatchErrors(t *testing.T) {
	ts, g := newTestServer(t, server.Config{MaxBatch: 4})
	n := g.NumVertices()
	for _, tc := range []struct {
		name   string
		body   any
		status int
	}{
		{"too large", map[string]any{"pairs": [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}}}, http.StatusRequestEntityTooLarge},
		{"out of range pair", map[string]any{"pairs": [][2]int{{0, n}}}, http.StatusBadRequest},
		{"unknown graph", map[string]any{"graph": "nope", "pairs": [][2]int{{0, 1}}}, http.StatusNotFound},
	} {
		status, body := post(t, ts.URL+"/v1/batch", tc.body)
		if status != tc.status {
			t.Errorf("%s: status %d, want %d (%v)", tc.name, status, tc.status, body)
		}
	}
	// Empty batch is fine.
	if status, body := post(t, ts.URL+"/v1/batch", map[string]any{"pairs": [][2]int{}}); status != http.StatusOK {
		t.Errorf("empty batch: %d %v", status, body)
	}
	// An oversized body is rejected by the byte cap while streaming, before
	// the decoder can buffer it all (MaxBatch=4 caps the body at ~4.3 KB).
	big := make([][2]int, 2000)
	status, body := post(t, ts.URL+"/v1/batch", map[string]any{"pairs": big})
	if status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413 (%v)", status, body)
	}
}

// TestConcurrentClients hammers /v1/batch and /v1/reach from many clients
// at once — with -race this is the serving-layer thread-safety check the
// acceptance criteria ask for.
func TestConcurrentClients(t *testing.T) {
	ts, g := newTestServer(t, server.Config{Parallelism: 4})
	plain, err := kreach.BuildIndex(g, kreach.IndexOptions{K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	var pairs [][2]int
	want := make(map[[2]int]bool)
	for s := 0; s < n; s += 5 {
		for tt := 1; tt < n; tt += 7 {
			pairs = append(pairs, [2]int{s, tt})
			want[[2]int{s, tt}] = plain.Reach(s, tt)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			for round := 0; round < 5; round++ {
				if client%2 == 0 {
					status, body := post(t, ts.URL+"/v1/batch", map[string]any{"graph": pick(client, round), "pairs": pairs})
					if status != http.StatusOK {
						errs <- fmt.Errorf("client %d: batch status %d", client, status)
						return
					}
					if pick(client, round) == "plain" {
						results := field[[]bool](t, body, "results")
						for i, p := range pairs {
							if results[i] != want[p] {
								errs <- fmt.Errorf("client %d: pair %v = %v, want %v", client, p, results[i], want[p])
								return
							}
						}
					}
				} else {
					p := pairs[(client*31+round*17)%len(pairs)]
					status, body := post(t, ts.URL+"/v1/reach", map[string]any{"s": p[0], "t": p[1]})
					if status != http.StatusOK {
						errs <- fmt.Errorf("client %d: reach status %d", client, status)
						return
					}
					if got := field[bool](t, body, "reachable"); got != want[p] {
						errs <- fmt.Errorf("client %d: reach(%v) = %v, want %v", client, p, got, want[p])
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// pick rotates batch clients over the three datasets so plain, hk and multi
// all see concurrent traffic.
func pick(client, round int) string {
	switch (client + round) % 3 {
	case 0:
		return "plain"
	case 1:
		return "hk"
	default:
		return "multi"
	}
}

func TestRegistryValidation(t *testing.T) {
	g, _ := genGraph(t, 9)
	plain, err := kreach.BuildIndex(g, kreach.IndexOptions{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	hk, err := kreach.BuildHKIndex(g, kreach.HKOptions{H: 1, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	reg := server.NewRegistry()
	if err := reg.Add(&server.Dataset{Name: "", Graph: g, Reacher: plain}); err == nil {
		t.Error("nameless dataset accepted")
	}
	if err := reg.Add(&server.Dataset{Name: "x", Graph: g}); err == nil {
		t.Error("index-less dataset accepted")
	}
	if err := reg.Add(&server.Dataset{Name: "x", Reacher: plain}); err == nil {
		t.Error("graph-less dataset accepted")
	}
	if err := reg.Add(&server.Dataset{Name: "x", Graph: g, Reacher: plain}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add(&server.Dataset{Name: "x", Graph: g, Reacher: hk}); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := reg.Lookup(""); err != nil {
		t.Errorf("default lookup failed: %v", err)
	}
	if _, err := server.NewRegistry().Lookup(""); err == nil {
		t.Error("default lookup on empty registry succeeded")
	}
}
