package server

import (
	"net/http"
	"sync"
	"time"
)

// The slow-query trace ring: query requests (reach, batch, neighbors) that
// exceed the configured threshold leave an annotated trace — who was
// asked, which execution path answered, how long it took — in a fixed-size
// ring served at GET /v1/debug/slow. The ring is a debugging surface, not
// a log: it holds the most recent slowRingSize traces and overwrites the
// oldest, so it costs constant memory no matter how bad an incident gets.

// slowRingSize is the trace capacity of the ring.
const slowRingSize = 128

// DefaultSlowQueryThreshold is the trace threshold when
// Config.SlowQueryThreshold is 0. Negative disables tracing.
const DefaultSlowQueryThreshold = 100 * time.Millisecond

// SlowTrace is one recorded slow query.
type SlowTrace struct {
	ID       string        `json:"id"`
	Endpoint string        `json:"endpoint"`
	Dataset  string        `json:"dataset"`
	Outcome  string        `json:"outcome"`
	S        int           `json:"s"`
	T        int           `json:"t,omitempty"` // meaningless for neighbors
	K        *int          `json:"k,omitempty"` // request bound; absent = native
	Path     string        `json:"path,omitempty"`
	Workers  int           `json:"workers,omitempty"` // batch parallelism; 0 = inline
	Duration time.Duration `json:"-"`
	Start    time.Time     `json:"start"`

	// DurationMs mirrors Duration for the JSON surface.
	DurationMs float64 `json:"duration_ms"`
}

// slowRing is the fixed-size overwrite-oldest trace buffer.
type slowRing struct {
	mu    sync.Mutex
	buf   [slowRingSize]SlowTrace
	n     int    // filled entries, ≤ slowRingSize
	next  int    // next write position
	total uint64 // traces ever recorded
}

func (r *slowRing) record(t SlowTrace) {
	t.DurationMs = float64(t.Duration) / 1e6
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % slowRingSize
	if r.n < slowRingSize {
		r.n++
	}
	r.total++
	r.mu.Unlock()
}

// snapshot returns the retained traces, newest first.
func (r *slowRing) snapshot() ([]SlowTrace, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SlowTrace, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.next-1-i+slowRingSize)%slowRingSize]
	}
	return out, r.total
}

// slowResponse is the GET /v1/debug/slow body.
type slowResponse struct {
	ThresholdMs float64     `json:"threshold_ms"`
	Total       uint64      `json:"total"` // traces recorded since start (ring may have dropped older ones)
	Traces      []SlowTrace `json:"traces"`
}

func (s *Server) handleDebugSlow(w http.ResponseWriter, _ *http.Request) {
	traces, total := s.slowRing.snapshot()
	writeJSON(w, http.StatusOK, slowResponse{
		ThresholdMs: float64(s.slowThreshold) / 1e6,
		Total:       total,
		Traces:      traces,
	})
}
