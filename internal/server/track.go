package server

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"time"
)

// Request tracking: every serving endpoint runs inside instrument(), which
// assigns a request ID, times the request, resolves its outcome, feeds the
// endpoint×dataset×outcome latency histogram, writes one structured access
// log line and — for query endpoints past the slow threshold — records a
// trace in the slow ring. Handlers annotate the in-flight request through
// the reqTrack carried in the context; the ID also rides out to the client
// as the X-Request-Id header and into worker pools via the context.

// Request outcomes, the third label of kreach_request_duration_seconds.
const (
	outcomeOK        = "ok"
	outcomeError     = "error"
	outcomeCancelled = "cancelled"
	outcomeCacheHit  = "cache-hit"
)

// reqTrack is the mutable annotation record of one in-flight request.
// Handlers fill in what they learn (dataset, query shape, execution path,
// explicit outcome); instrument() reads it once the handler returns. It is
// touched only by the request's own goroutine.
type reqTrack struct {
	id      string
	dataset string
	outcome string // set by handlers for outcomes status codes can't express (cache-hit)
	path    string // execution path, for the slow ring
	s, t    int
	k       *int
	pairs   int // batch size (batch endpoint only)
	workers int // batch parallelism (batch endpoint only)
	query   bool
}

type trackKey struct{}

// track returns the request's annotation record, or a discardable dummy
// when the handler runs outside instrument() (direct mux tests).
func track(ctx context.Context) *reqTrack {
	if rt, ok := ctx.Value(trackKey{}).(*reqTrack); ok {
		return rt
	}
	return &reqTrack{}
}

// RequestID returns the request ID instrument() assigned, "" outside an
// instrumented request. Exposed for handlers and error paths that want to
// correlate logs with the X-Request-Id the client saw.
func RequestID(ctx context.Context) string { return track(ctx).id }

// statusWriter captures the response status for outcome classification.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrument wraps one endpoint's handler with the full observability
// pipeline. query marks endpoints whose requests are eligible for the
// slow-query ring (reach, batch, neighbors).
func (s *Server) instrument(endpoint string, query bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rt := &reqTrack{
			id:    fmt.Sprintf("%s-%06d", s.idBase, s.reqSeq.Add(1)),
			query: query,
		}
		w.Header().Set("X-Request-Id", rt.id)
		sw := &statusWriter{ResponseWriter: w}
		r = r.WithContext(context.WithValue(r.Context(), trackKey{}, rt))

		s.obs.inFlight.Add(1)
		start := time.Now()
		h(sw, r)
		dur := time.Since(start)
		s.obs.inFlight.Add(-1)

		outcome := rt.outcome
		if outcome == "" {
			switch {
			case sw.status == 0 || (sw.status >= 200 && sw.status < 400):
				// A handler that wrote nothing is the client-gone silent path.
				if sw.status == 0 && r.Context().Err() != nil {
					outcome = outcomeCancelled
				} else {
					outcome = outcomeOK
				}
			case r.Context().Err() != nil:
				outcome = outcomeCancelled
			default:
				outcome = outcomeError
			}
		}
		dataset := rt.dataset
		if dataset == "" {
			dataset = "-"
		}
		s.obs.requests.With(endpoint, dataset, outcome).Observe(dur)

		attrs := []slog.Attr{
			slog.String("id", rt.id),
			slog.String("endpoint", endpoint),
			slog.String("dataset", dataset),
			slog.String("outcome", outcome),
			slog.Int("status", sw.status),
			slog.Duration("duration", dur),
		}
		if rt.path != "" {
			attrs = append(attrs, slog.String("path", rt.path))
		}
		if rt.pairs > 0 {
			attrs = append(attrs, slog.Int("pairs", rt.pairs))
		}
		s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)

		if query && s.slowThreshold > 0 && dur >= s.slowThreshold {
			s.obs.slow.Inc()
			s.slowRing.record(SlowTrace{
				ID:       rt.id,
				Endpoint: endpoint,
				Dataset:  dataset,
				Outcome:  outcome,
				S:        rt.s,
				T:        rt.t,
				K:        rt.k,
				Path:     rt.path,
				Workers:  rt.workers,
				Duration: dur,
				Start:    start.UTC(),
			})
			s.logger.LogAttrs(r.Context(), slog.LevelWarn, "slow query",
				slog.String("id", rt.id),
				slog.String("endpoint", endpoint),
				slog.String("dataset", dataset),
				slog.String("path", rt.path),
				slog.Duration("duration", dur))
		}
	}
}
