package server_test

// Serving-layer view of durability: a dataset opened through
// OpenDurableDynamicIndex exposes its WAL counters in /v1/stats, the
// section tracks live mutations and checkpoints, it survives the RCU swap
// a compaction performs, and a server rebuilt over the same durability
// directory comes back answering like the one that went down.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"kreach"
	"kreach/internal/server"
)

// walStatsView mirrors the wal section of datasetInfo.
type walStatsView struct {
	Dir             string `json:"dir"`
	Sync            string `json:"sync"`
	RecordsAppended uint64 `json:"records_appended"`
	Syncs           uint64 `json:"syncs"`
	RecordsReplayed uint64 `json:"records_replayed"`
	Checkpoints     uint64 `json:"checkpoints"`
	SnapshotEpoch   uint64 `json:"snapshot_epoch"`
	LastEpoch       uint64 `json:"last_epoch"`
	LogBytes        int64  `json:"log_bytes"`
}

// newDurableServer serves one durable mutable dataset over the same
// two-chain graph newDynamicServer uses, journaling into dir.
func newDurableServer(t *testing.T, dir string) (*httptest.Server, *server.Registry) {
	t.Helper()
	b := kreach.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	g := b.Build()
	dyn, rg, w, err := kreach.OpenDurableDynamicIndex(g,
		kreach.DynamicOptions{K: 4, Seed: 1, CompactRatio: 1e9},
		kreach.DurableOptions{Dir: dir, Sync: kreach.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	reg := server.NewRegistry()
	if err := reg.Add(&server.Dataset{Name: "dyn", Graph: rg, Reacher: dyn, WAL: w}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(reg, server.Config{}))
	t.Cleanup(ts.Close)
	return ts, reg
}

// fetchWALStats pulls the wal section for the one dataset in /v1/stats.
func fetchWALStats(t *testing.T, url string) *walStatsView {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Datasets []struct {
			Name string        `json:"name"`
			Kind string        `json:"kind"`
			WAL  *walStatsView `json:"wal"`
		} `json:"datasets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Datasets) != 1 || stats.Datasets[0].Name != "dyn" {
		t.Fatalf("unexpected datasets in stats: %+v", stats.Datasets)
	}
	return stats.Datasets[0].WAL
}

func TestStatsWALSection(t *testing.T) {
	dir := t.TempDir()
	ts, _ := newDurableServer(t, dir)

	w := fetchWALStats(t, ts.URL)
	if w == nil {
		t.Fatal("durable dataset has no wal section in /v1/stats")
	}
	if w.Dir != dir || w.Sync != "always" {
		t.Fatalf("wal section dir=%q sync=%q, want %q/always", w.Dir, w.Sync, dir)
	}
	if w.RecordsAppended != 0 || w.LogBytes != 4 {
		t.Fatalf("fresh wal section: %+v", w)
	}

	// One mutation through the HTTP surface → one record, one sync, a
	// durable epoch matching what the dataset acknowledged.
	status, body := post(t, ts.URL+"/v1/datasets/dyn/edges", map[string]any{
		"add": [][2]int{{2, 3}},
	})
	if status != http.StatusOK {
		t.Fatalf("edges status %d: %v", status, body)
	}
	epoch := field[uint64](t, body, "epoch")
	w = fetchWALStats(t, ts.URL)
	if w.RecordsAppended != 1 || w.Syncs == 0 {
		t.Fatalf("post-mutation wal section: %+v", w)
	}
	if w.LastEpoch != epoch {
		t.Fatalf("wal last_epoch %d, acknowledged epoch %d", w.LastEpoch, epoch)
	}
	if w.LogBytes <= 4 {
		t.Fatalf("log did not grow: %+v", w)
	}
}

func TestStatsWALSurvivesCompaction(t *testing.T) {
	dir := t.TempDir()
	ts, _ := newDurableServer(t, dir)
	status, body := post(t, ts.URL+"/v1/datasets/dyn/edges", map[string]any{
		"add": [][2]int{{2, 3}},
	})
	if status != http.StatusOK {
		t.Fatalf("edges status %d: %v", status, body)
	}

	// Compaction swaps the dataset snapshot; the WAL handle must ride
	// along, now reporting a checkpoint and a truncated log.
	status, body = post(t, ts.URL+"/v1/datasets/dyn/compact", nil)
	if status != http.StatusOK {
		t.Fatalf("compact status %d: %v", status, body)
	}
	w := fetchWALStats(t, ts.URL)
	if w == nil {
		t.Fatal("wal section lost across the compaction swap")
	}
	if w.Checkpoints != 1 || w.SnapshotEpoch == 0 || w.LogBytes != 4 {
		t.Fatalf("post-compaction wal section: %+v", w)
	}

	// And the successor keeps journaling into the same store.
	status, _ = post(t, ts.URL+"/v1/datasets/dyn/edges", map[string]any{
		"remove": [][2]int{{2, 3}},
	})
	if status != http.StatusOK {
		t.Fatalf("post-compact edges status %d", status)
	}
	w = fetchWALStats(t, ts.URL)
	if w.RecordsAppended != 2 || w.LogBytes <= 4 {
		t.Fatalf("successor not journaling: %+v", w)
	}
}

// TestDurableServerRestart rebuilds the whole serving stack over the same
// durability directory and requires the flipped answer to survive.
func TestDurableServerRestart(t *testing.T) {
	dir := t.TempDir()
	ts, _ := newDurableServer(t, dir)
	if reachable(t, ts.URL, 0, 4) {
		t.Fatal("0→4 reachable before mutation")
	}
	status, body := post(t, ts.URL+"/v1/datasets/dyn/edges", map[string]any{
		"add": [][2]int{{2, 3}},
	})
	if status != http.StatusOK {
		t.Fatalf("edges status %d: %v", status, body)
	}
	epoch := field[uint64](t, body, "epoch")
	if !reachable(t, ts.URL, 0, 4) {
		t.Fatal("0→4 not reachable after bridging edge")
	}
	ts.Close() // abandon without checkpoint: recovery must replay the log

	ts2, _ := newDurableServer(t, dir)
	if !reachable(t, ts2.URL, 0, 4) {
		t.Fatal("0→4 lost across restart")
	}
	w := fetchWALStats(t, ts2.URL)
	if w.RecordsReplayed != 1 || w.LastEpoch != epoch {
		t.Fatalf("restarted wal section: %+v, want 1 replayed at epoch %d", w, epoch)
	}
}
