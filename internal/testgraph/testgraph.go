// Package testgraph provides shared graph fixtures for the test suites:
// the worked example graph from Figures 1–4 of the paper and seeded random
// graph generators small enough for brute-force oracles.
package testgraph

import (
	"math/rand/v2"

	"kreach/internal/graph"
)

// Named vertices of the paper's example graph (Figure 1 / Figure 3).
const (
	A graph.Vertex = iota
	B
	C
	D
	E
	F
	G
	H
	I
	J
)

// VertexName maps the example graph's vertex ids back to the paper's
// letters, for readable failure messages.
func VertexName(v graph.Vertex) string {
	if v < 0 || v > J {
		return "?"
	}
	return string(rune('a' + v))
}

// PaperFigure1 reconstructs the 10-vertex example graph of Figure 1. The
// edge set is derived from the worked Examples 1–4:
//
//	a→b, c→b, b→d, d→e, d→f, e→g, g→h, g→i, i→j
//
// With this edge set, {b,d,g,i} is the vertex cover of Example 1 (picked via
// edges (b,d) and (g,i)), the 3-reach index has exactly the edges
// (b,d):1 (b,g):3 (d,g):2 (d,i):3 (g,i):1 as in Figure 2, {d,e,g} is the
// 2-hop vertex cover of Example 3, and every query verdict stated in
// Examples 2 and 4 holds.
func PaperFigure1() *graph.Graph {
	b := graph.NewBuilder(10)
	for _, e := range [][2]graph.Vertex{
		{A, B}, {C, B}, {B, D}, {D, E}, {D, F}, {E, G}, {G, H}, {G, I}, {I, J},
	} {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// Random returns a seeded uniform random directed graph with n vertices and
// up to m distinct edges (self-loops excluded, duplicates collapsed).
func Random(n, m int, seed uint64) *graph.Graph {
	rng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	b := graph.NewBuilder(n)
	if n > 1 {
		for i := 0; i < m; i++ {
			u := graph.Vertex(rng.IntN(n))
			v := graph.Vertex(rng.IntN(n))
			if u == v {
				continue
			}
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// RandomDAG returns a seeded random DAG: edges only go from lower to higher
// vertex id, so topological order is the identity.
func RandomDAG(n, m int, seed uint64) *graph.Graph {
	rng := rand.New(rand.NewPCG(seed, 0x51f15ead5eed))
	b := graph.NewBuilder(n)
	if n > 1 {
		for i := 0; i < m; i++ {
			u := rng.IntN(n - 1)
			v := u + 1 + rng.IntN(n-1-u)
			b.AddEdge(graph.Vertex(u), graph.Vertex(v))
		}
	}
	return b.Build()
}

// Cycle returns a directed cycle on n vertices (0→1→…→n-1→0).
func Cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(graph.Vertex(i), graph.Vertex((i+1)%n))
	}
	return b.Build()
}

// Path returns a directed path 0→1→…→n-1.
func Path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(graph.Vertex(i), graph.Vertex(i+1))
	}
	return b.Build()
}

// Star returns a hub-and-spoke graph: 0→i for i in [1,n) when out is true,
// i→0 otherwise. Exercises the paper's "Lady Gaga" high-degree case.
func Star(n int, out bool) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		if out {
			b.AddEdge(0, graph.Vertex(i))
		} else {
			b.AddEdge(graph.Vertex(i), 0)
		}
	}
	return b.Build()
}

// ReachOracle precomputes all-pairs k-hop reachability by BFS from every
// vertex; Dist[s][t] is the shortest path length or graph.InfDist. Intended
// for graphs with at most a few thousand vertices.
type ReachOracle struct {
	Dist [][]int32
}

// NewReachOracle builds the oracle for g.
func NewReachOracle(g *graph.Graph) *ReachOracle {
	n := g.NumVertices()
	o := &ReachOracle{Dist: make([][]int32, n)}
	for s := 0; s < n; s++ {
		o.Dist[s] = graph.BFSDistances(g, graph.Vertex(s), graph.Forward)
	}
	return o
}

// Reach reports whether t is within k hops of s (k < 0 means unbounded).
func (o *ReachOracle) Reach(s, t graph.Vertex, k int) bool {
	d := o.Dist[s][t]
	if d == graph.InfDist {
		return false
	}
	return k < 0 || int(d) <= k
}
