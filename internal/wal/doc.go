// Package wal makes a dynamic k-reach dataset durable: a write-ahead log
// of epoch-tagged mutation batches plus a compacted snapshot, together
// reconstructing the exact pre-crash index state on restart.
//
// A durability directory holds two files. wal.log is the KRW1 log: a magic
// header followed by length-prefixed, CRC-framed records, one per mutation
// batch, each carrying the epoch the batch was (or would have been)
// published under. snapshot.krs is the KRS1 snapshot: an epoch-stamped
// header over a complete KRG1 graph stream, written by checkpoints
// (compactions) which then truncate the log.
//
// The contract is append-before-apply: Index.Mutate journals a batch
// through Store.Append — fsynced under the default policy — before any
// index state changes, so every acknowledged mutation is durable and the
// acknowledged history is always a prefix of the durable one. Recovery
// (Store.Recover) loads the snapshot (or the base graph), replays every
// valid log record newer than the snapshot epoch, truncates a torn tail at
// the last valid record, and returns an index whose epoch equals the
// pre-crash epoch exactly — after advancing the process generation counter
// past everything recovered, so post-recovery epochs stay monotonic and
// epoch-keyed caches can never serve a stale answer.
package wal
