package wal_test

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"kreach/internal/graph"
	"kreach/internal/testgraph"
	"kreach/internal/wal"
)

// Tests for the replication feed: the snapshot-vs-tail decision boundary
// FeedSince promises (a follower must never be served a record gap), the
// checkpoint retention window that makes tailing possible at all, and the
// KRF1 wire codec's behavior under torn streams and bit rot.

// feedEpochs decodes a chunk's records region into its epochs.
func feedEpochs(t *testing.T, ck wal.FeedChunk) []uint64 {
	t.Helper()
	if len(ck.Records) == 0 {
		return nil
	}
	recs, err := wal.DecodeRecords(ck.Records)
	if err != nil {
		t.Fatalf("decoding feed records: %v", err)
	}
	if len(recs) != ck.NumRecords {
		t.Fatalf("chunk says %d records, payload holds %d", ck.NumRecords, len(recs))
	}
	epochs := make([]uint64, len(recs))
	for i, r := range recs {
		epochs[i] = r.Epoch
	}
	return epochs
}

// TestFeedSnapshotTailBoundary pins the decision FeedSince makes for every
// cursor position relative to the retained log: tail mode exactly when the
// log provably holds every record newer than the cursor (tailFloor <= from
// <= lastEpoch, from > 0), full snapshot otherwise.
func TestFeedSnapshotTailBoundary(t *testing.T) {
	dir := t.TempDir()
	base := testgraph.Path(8)
	st, ix, _ := openRecover(t, dir, base, wal.Options{RetainEpochs: 2})
	defer st.Close()

	var epochs []uint64 // e[0..3]: the four batch epochs
	for _, e := range []graph.Edge{edge(0, 5), edge(1, 6), edge(2, 7), edge(0, 7)} {
		res, err := ix.Mutate([]graph.Edge{e}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Applied() {
			t.Fatalf("batch %v did not apply", e)
		}
		epochs = append(epochs, res.Epoch)
	}
	next, err := ix.Compact(nil)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := next.Epoch() // the checkpoint's fresh epoch, newer than e[3]

	stats := st.Stats()
	if stats.TailFloor != epochs[1] {
		t.Fatalf("tail floor %d after retaining 2 of 4 records, want %d", stats.TailFloor, epochs[1])
	}
	if stats.SnapshotEpoch != ckpt || stats.LastEpoch != ckpt {
		t.Fatalf("snapshot/last epoch %d/%d, want checkpoint %d", stats.SnapshotEpoch, stats.LastEpoch, ckpt)
	}

	cases := []struct {
		name         string
		from         uint64
		wantSnapshot bool
		wantRecords  []uint64
	}{
		{"cold start", 0, true, nil},
		{"below retained window", epochs[0], true, nil},
		{"at tail floor", epochs[1], false, []uint64{epochs[2], epochs[3]}},
		{"inside retained window", epochs[2], false, []uint64{epochs[3]}},
		{"at last record, compaction gap ahead", epochs[3], false, nil},
		{"at newest epoch", ckpt, false, nil},
		{"from a future this store never had", ckpt + 1000, true, nil},
	}
	for _, tc := range cases {
		ck, err := st.FeedSince(tc.from, 0)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if (ck.Snapshot != nil) != tc.wantSnapshot {
			t.Errorf("%s: snapshot present = %v, want %v", tc.name, ck.Snapshot != nil, tc.wantSnapshot)
		}
		if got := feedEpochs(t, ck); len(got) != len(tc.wantRecords) {
			t.Errorf("%s: record epochs %v, want %v", tc.name, got, tc.wantRecords)
		} else {
			for i := range got {
				if got[i] != tc.wantRecords[i] {
					t.Errorf("%s: record epochs %v, want %v", tc.name, got, tc.wantRecords)
					break
				}
			}
		}
		// Uncapped chunks always serve through the newest epoch: the promise
		// that closes a compaction's record-free epoch gap.
		if ck.LastEpoch != ckpt || ck.ServedThrough != ckpt {
			t.Errorf("%s: last/served %d/%d, want %d", tc.name, ck.LastEpoch, ck.ServedThrough, ckpt)
		}
		if tc.wantSnapshot {
			_, snapEpoch, err := wal.DecodeSnapshot(ck.Snapshot)
			if err != nil {
				t.Fatalf("%s: shipped snapshot does not decode: %v", tc.name, err)
			}
			if snapEpoch != ckpt || ck.ResumeFrom != ckpt {
				t.Errorf("%s: snapshot epoch %d resume %d, want %d", tc.name, snapEpoch, ck.ResumeFrom, ckpt)
			}
		}
	}
}

// TestFeedVirginStoreSynthesizesBaseSnapshot: a store that has never
// checkpointed has no snapshot file; a cold follower still gets one — the
// recovery base at epoch 0 — plus every record, mirroring recovery's rule.
func TestFeedVirginStoreSynthesizesBaseSnapshot(t *testing.T) {
	dir := t.TempDir()
	base := testgraph.Path(6)
	st, ix, _ := openRecover(t, dir, base, wal.Options{})
	defer st.Close()
	res1, err := ix.Mutate([]graph.Edge{edge(0, 4)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := ix.Mutate([]graph.Edge{edge(5, 0)}, nil)
	if err != nil {
		t.Fatal(err)
	}

	ck, err := st.FeedSince(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	g, snapEpoch, err := wal.DecodeSnapshot(ck.Snapshot)
	if err != nil {
		t.Fatalf("synthesized snapshot does not decode: %v", err)
	}
	if snapEpoch != 0 || ck.ResumeFrom != 0 {
		t.Errorf("virgin snapshot epoch %d resume %d, want 0/0", snapEpoch, ck.ResumeFrom)
	}
	if g.NumVertices() != base.NumVertices() || g.NumEdges() != base.NumEdges() {
		t.Errorf("synthesized snapshot is %d/%d, want the base %d/%d",
			g.NumVertices(), g.NumEdges(), base.NumVertices(), base.NumEdges())
	}
	if got := feedEpochs(t, ck); len(got) != 2 || got[0] != res1.Epoch || got[1] != res2.Epoch {
		t.Errorf("record epochs %v, want [%d %d]", got, res1.Epoch, res2.Epoch)
	}
}

// TestFeedByteCapCutsAtRecordBoundary: a byte cap trims whole records off
// the chunk's tail, never splits one, always serves at least one, and
// ServedThrough reports exactly how far the cut chunk is complete.
func TestFeedByteCapCutsAtRecordBoundary(t *testing.T) {
	dir := t.TempDir()
	base := testgraph.Path(8)
	st, ix, _ := openRecover(t, dir, base, wal.Options{})
	defer st.Close()
	var epochs []uint64
	for _, e := range []graph.Edge{edge(0, 5), edge(1, 6), edge(2, 7)} {
		res, err := ix.Mutate([]graph.Edge{e}, nil)
		if err != nil {
			t.Fatal(err)
		}
		epochs = append(epochs, res.Epoch)
	}

	ck, err := st.FeedSince(epochs[0], 1) // 1 byte: below any record's size
	if err != nil {
		t.Fatal(err)
	}
	if got := feedEpochs(t, ck); len(got) != 1 || got[0] != epochs[1] {
		t.Fatalf("capped chunk epochs %v, want exactly [%d]", got, epochs[1])
	}
	if ck.ServedThrough != epochs[1] || ck.LastEpoch != epochs[2] {
		t.Errorf("served/last %d/%d, want %d/%d", ck.ServedThrough, ck.LastEpoch, epochs[1], epochs[2])
	}
	// Resuming from the cut point serves the remainder.
	ck2, err := st.FeedSince(ck.ServedThrough, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ck2.Snapshot != nil {
		t.Error("resume from a cut chunk re-shipped a snapshot")
	}
	if got := feedEpochs(t, ck2); len(got) != 1 || got[0] != epochs[2] {
		t.Errorf("resumed chunk epochs %v, want [%d]", got, epochs[2])
	}
}

// TestFeedRetentionDefaultTruncatesFully pins the default (RetainEpochs 0)
// checkpoint behavior — the whole log folds into the snapshot — and that
// the tail floor still lands on the last dropped record, so a follower
// standing exactly at the newest record needs no snapshot for the
// checkpoint's own epoch.
func TestFeedRetentionDefaultTruncatesFully(t *testing.T) {
	dir := t.TempDir()
	base := testgraph.Path(6)
	st, ix, _ := openRecover(t, dir, base, wal.Options{})
	defer st.Close()
	res1, err := ix.Mutate([]graph.Edge{edge(0, 4)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := ix.Mutate([]graph.Edge{edge(5, 0)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	next, err := ix.Compact(nil)
	if err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.LogBytes != 4 {
		t.Fatalf("default checkpoint left %d log bytes, want the bare magic", stats.LogBytes)
	}
	if stats.TailFloor != res2.Epoch {
		t.Errorf("tail floor %d, want last dropped record's %d", stats.TailFloor, res2.Epoch)
	}
	// A follower at the last pre-checkpoint record: tail mode, no records,
	// served through the checkpoint epoch (the compaction gap it adopts).
	ck, err := st.FeedSince(res2.Epoch, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Snapshot != nil || ck.NumRecords != 0 || ck.ServedThrough != next.Epoch() {
		t.Errorf("at-tip follower got snapshot=%v records=%d served=%d, want tail gap to %d",
			ck.Snapshot != nil, ck.NumRecords, ck.ServedThrough, next.Epoch())
	}
	// One record older: the log no longer has res2's record — snapshot.
	if ck, err = st.FeedSince(res1.Epoch, 0); err != nil {
		t.Fatal(err)
	}
	if ck.Snapshot == nil {
		t.Error("follower below the truncated log was served a record gap instead of a snapshot")
	}
}

// TestFeedRetentionSurvivesRestart: the tail floor reconstructs from the
// retained records on reopen, so a restarted primary keeps serving tails to
// followers inside the retained window.
func TestFeedRetentionSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	base := testgraph.Path(8)
	st, ix, _ := openRecover(t, dir, base, wal.Options{RetainEpochs: 2})
	var epochs []uint64
	for _, e := range []graph.Edge{edge(0, 5), edge(1, 6), edge(2, 7)} {
		res, err := ix.Mutate([]graph.Edge{e}, nil)
		if err != nil {
			t.Fatal(err)
		}
		epochs = append(epochs, res.Epoch)
	}
	if _, err := ix.Compact(nil); err != nil {
		t.Fatal(err)
	}
	floorBefore := st.Stats().TailFloor
	st.Close()

	st2, _, _ := openRecover(t, dir, base, wal.Options{RetainEpochs: 2})
	defer st2.Close()
	if got := st2.Stats().TailFloor; got != floorBefore || got != epochs[0] {
		t.Fatalf("reopened tail floor %d, want %d (pre-restart %d)", got, epochs[0], floorBefore)
	}
	ck, err := st2.FeedSince(epochs[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Snapshot != nil {
		t.Error("restarted primary re-shipped a snapshot inside the retained window")
	}
	if got := feedEpochs(t, ck); len(got) != 2 || got[0] != epochs[1] || got[1] != epochs[2] {
		t.Errorf("record epochs %v, want [%d %d]", got, epochs[1], epochs[2])
	}
}

// readAllFrames drains a KRF1 stream, returning the frames and the error
// that ended it (io.EOF for a clean end).
func readAllFrames(data []byte) ([]wal.FeedFrame, error) {
	fr := wal.NewFeedReader(bytes.NewReader(data))
	var frames []wal.FeedFrame
	for {
		f, err := fr.Next()
		if err != nil {
			return frames, err
		}
		frames = append(frames, f)
	}
}

// wireChunk builds a real chunk (snapshot + records + heartbeat) to attack.
func wireChunk(t *testing.T) []byte {
	t.Helper()
	dir := t.TempDir()
	base := testgraph.Path(6)
	st, ix, _ := openRecover(t, dir, base, wal.Options{})
	defer st.Close()
	for _, e := range []graph.Edge{edge(0, 4), edge(5, 0)} {
		if _, err := ix.Mutate([]graph.Edge{e}, nil); err != nil {
			t.Fatal(err)
		}
	}
	ck, err := st.FeedSince(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Snapshot == nil || ck.NumRecords != 2 {
		t.Fatalf("wire chunk not as expected: snapshot=%v records=%d", ck.Snapshot != nil, ck.NumRecords)
	}
	return ck.AppendWire(nil)
}

// TestFeedWireRoundTrip: an intact stream decodes to heartbeat, snapshot,
// records, and the trailing commit heartbeat — and each payload decodes
// with its inner format.
func TestFeedWireRoundTrip(t *testing.T) {
	wire := wireChunk(t)
	frames, err := readAllFrames(wire)
	if !errors.Is(err, io.EOF) {
		t.Fatalf("intact stream ended with %v, want io.EOF", err)
	}
	if len(frames) != 4 ||
		frames[0].Kind != wal.FrameHeartbeat ||
		frames[1].Kind != wal.FrameSnapshot ||
		frames[2].Kind != wal.FrameRecords ||
		frames[3].Kind != wal.FrameHeartbeat {
		t.Fatalf("frame kinds %v, want [heartbeat snapshot records heartbeat]", frames)
	}
	last, served, err := frames[0].Heartbeat()
	if err != nil || last == 0 || served != last {
		t.Errorf("heartbeat %d/%d (err %v)", last, served, err)
	}
	// The commit heartbeat restates the leading one byte for byte: a chunk
	// cut at a frame boundary is detectable precisely because the promise
	// only counts when it is the stream's final frame.
	if !bytes.Equal(frames[3].Payload, frames[0].Payload) {
		t.Errorf("commit heartbeat %x differs from leading %x", frames[3].Payload, frames[0].Payload)
	}
	if _, _, err := wal.DecodeSnapshot(frames[1].Payload); err != nil {
		t.Errorf("snapshot frame payload: %v", err)
	}
	if recs, err := wal.DecodeRecords(frames[2].Payload); err != nil || len(recs) != 2 {
		t.Errorf("records frame payload: %d records, err %v", len(recs), err)
	}
}

// TestFeedWireTornEverywhere cuts the stream at every byte offset: the
// reader must either end cleanly at a frame boundary (io.EOF, a prefix of
// the true frames) or report ErrTornFeed — never invent a frame, never
// return a bad error class.
func TestFeedWireTornEverywhere(t *testing.T) {
	wire := wireChunk(t)
	full, _ := readAllFrames(wire)
	// Frame boundaries: after magic, then after each frame.
	boundaries := map[int]int{4: 0} // offset → frames decodable at it
	off := 4
	for i, f := range full {
		off += 9 + len(f.Payload)
		boundaries[off] = i + 1
	}
	for cut := 0; cut < len(wire); cut++ {
		frames, err := readAllFrames(wire[:cut])
		if wantFrames, clean := boundaries[cut]; clean {
			if !errors.Is(err, io.EOF) || len(frames) != wantFrames {
				t.Fatalf("cut@%d (boundary): %d frames, err %v; want %d frames and io.EOF",
					cut, len(frames), err, wantFrames)
			}
			continue
		}
		if !errors.Is(err, wal.ErrTornFeed) {
			t.Fatalf("cut@%d: err %v, want ErrTornFeed", cut, err)
		}
		if len(frames) > len(full) {
			t.Fatalf("cut@%d: torn stream yielded %d frames from %d", cut, len(frames), len(full))
		}
	}
}

// TestFeedWireBitFlipsDetected flips one bit at every byte of the stream:
// every flip must surface as ErrBadFeed or ErrTornFeed (a flipped length
// can make the stream look short) before the altered frame is returned.
// The kind byte is inside the frame checksum, so even a flip that turns
// one valid kind into another is caught.
func TestFeedWireBitFlipsDetected(t *testing.T) {
	wire := wireChunk(t)
	full, _ := readAllFrames(wire)
	for pos := 0; pos < len(wire); pos++ {
		bad := append([]byte(nil), wire...)
		bad[pos] ^= 1 << uint(pos%8)
		frames, err := readAllFrames(bad)
		if !errors.Is(err, wal.ErrBadFeed) && !errors.Is(err, wal.ErrTornFeed) {
			t.Fatalf("flip@%d: err %v, want ErrBadFeed or ErrTornFeed", pos, err)
		}
		// Every frame decoded before the error must be byte-identical to the
		// true stream's — corruption never leaks content.
		for i, f := range frames {
			if i >= len(full) || f.Kind != full[i].Kind || !bytes.Equal(f.Payload, full[i].Payload) {
				t.Fatalf("flip@%d: frame %d diverges from the intact stream", pos, i)
			}
		}
	}
}
