package wal_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"kreach/internal/graph"
	"kreach/internal/testgraph"
	"kreach/internal/wal"
)

// FuzzWALReplay throws hostile bytes at the full recovery pipeline: the
// KRW1 log decoder, the KRS1 snapshot decoder, and Store.Recover itself.
// The log is the one input the store must accept from disk after a crash,
// so the decoder can never trust it: bad CRCs, overflowing length
// prefixes, truncated tails, non-minimal varints, and foreign file formats
// all have to come back as a clean valid-prefix answer, never a panic or
// an over-read.
//
// Invariants enforced on every input:
//
//   - DecodeLog returns a valid-prefix length within the input and an
//     error drawn only from the documented set (nil, ErrTornTail,
//     ErrBadRecord, ErrBadMagic).
//   - Whatever records the decoder accepts survive a re-encode/re-decode
//     round trip semantically intact (byte identity is NOT required: a
//     hostile log can carry non-minimal varints that pass the CRC, and
//     the canonical writer is entitled to re-encode them shorter).
//   - DecodeSnapshot either rejects the input or returns a graph whose
//     canonical re-encoding decodes back to the same epoch and edges.
//   - Store.Recover over the input as a crashed wal.log either refuses
//     (foreign magic) or produces a usable index: invariants hold, the
//     torn tail is physically truncated, and the store accepts a
//     post-recovery append.
//
// Seeds below are regenerated from the live writers on every run, so the
// in-code corpus can never go stale; the checked-in corpus under
// testdata/fuzz/FuzzWALReplay holds the hostile shapes. CI fuzzes this
// target for a short burst on every push via `make fuzz-smoke`.
func FuzzWALReplay(f *testing.F) {
	valid := wal.AppendLog(nil, []wal.Record{
		{Epoch: 3, Add: []graph.Edge{edge(0, 1), edge(1, 2)}},
		{Epoch: 5, Remove: []graph.Edge{edge(0, 1)}},
		{Epoch: 9, Add: []graph.Edge{edge(2, 3)}, Remove: []graph.Edge{edge(1, 2)}},
	})
	f.Add([]byte(nil))
	f.Add(wal.AppendLog(nil, nil)) // magic only
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail mid-payload
	f.Add(valid[:6])            // torn tail mid-header
	crcFlip := append([]byte(nil), valid...)
	crcFlip[9] ^= 0x40 // inside the first record's CRC field
	f.Add(crcFlip)
	// Implausible length prefix: claims ~4GiB record.
	f.Add(append([]byte("KRW1"), 0xff, 0xff, 0xff, 0xff))
	f.Add([]byte("KRG1\x00\x00\x00\x00")) // foreign-but-real magic
	// A snapshot stream offered as a log (and vice versa via DecodeSnapshot).
	f.Add(wal.AppendSnapshot(nil, testgraph.Path(4), 7))
	// Record with an out-of-range vertex: frame-valid, semantically hostile.
	f.Add(wal.AppendLog(nil, []wal.Record{{Epoch: 2, Add: []graph.Edge{edge(1<<29, 0)}}}))

	base := testgraph.Path(6)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64<<10 {
			t.Skip("oversized input")
		}

		recs, validLen, err := wal.DecodeLog(data)
		if validLen < 0 || validLen > len(data) {
			t.Fatalf("valid prefix %d outside input of %d bytes", validLen, len(data))
		}
		switch {
		case err == nil:
			if len(data) >= 4 && validLen != len(data) {
				t.Fatalf("clean decode but valid prefix %d != %d", validLen, len(data))
			}
		case errors.Is(err, wal.ErrTornTail), errors.Is(err, wal.ErrBadRecord), errors.Is(err, wal.ErrBadMagic):
		default:
			t.Fatalf("undocumented DecodeLog error: %v", err)
		}

		// Accepted records must round-trip through the canonical writer.
		re := wal.AppendLog(nil, recs)
		recs2, validLen2, err2 := wal.DecodeLog(re)
		if err2 != nil || validLen2 != len(re) {
			t.Fatalf("re-encoded log does not decode cleanly: %v (valid %d of %d)", err2, validLen2, len(re))
		}
		requireSameRecords(t, recs, recs2)

		// The snapshot decoder faces the same hostile bytes on recovery.
		if g, epoch, serr := wal.DecodeSnapshot(data); serr == nil {
			reSnap := wal.AppendSnapshot(nil, g, epoch)
			g2, epoch2, serr2 := wal.DecodeSnapshot(reSnap)
			if serr2 != nil || epoch2 != epoch {
				t.Fatalf("snapshot re-encode: %v (epoch %d, want %d)", serr2, epoch2, epoch)
			}
			if g.NumVertices() != g2.NumVertices() || g.NumEdges() != g2.NumEdges() {
				t.Fatalf("snapshot re-encode changed shape: %d/%d vertices, %d/%d edges",
					g.NumVertices(), g2.NumVertices(), g.NumEdges(), g2.NumEdges())
			}
		}

		// Full replay: the input as the wal.log a crashed process left
		// behind. Kept to small inputs so the fuzzer's throughput stays
		// useful; the decoders above run on everything.
		if len(data) > 8<<10 {
			return
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal.log"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		ix, _, rs, err := st.Recover(base, dopts)
		if err != nil {
			return // refused (foreign magic, mismatched snapshot): fine.
		}
		if ix == nil {
			t.Fatal("Recover returned nil index without error")
		}
		if got := ix.Epoch(); got != rs.Epoch {
			t.Fatalf("index epoch %d != recovery stats epoch %d", got, rs.Epoch)
		}
		if err := ix.CheckInvariants(); err != nil {
			t.Fatalf("recovered index invariants: %v", err)
		}
		// The torn tail must be physically gone: the log on disk is now
		// exactly the valid prefix (or a fresh magic for an empty one).
		onDisk, err := os.ReadFile(filepath.Join(dir, "wal.log"))
		if err != nil {
			t.Fatal(err)
		}
		wantLen := validLen
		if wantLen == 0 {
			wantLen = 4 // recovery writes a fresh magic header
		}
		if len(onDisk) != wantLen {
			t.Fatalf("post-recovery log is %d bytes, want %d", len(onDisk), wantLen)
		}
		// And the store must be writable: append-before-apply on a live
		// mutation against the recovered state.
		if _, err := ix.Mutate([]graph.Edge{edge(0, 5)}, nil); err != nil {
			t.Fatalf("post-recovery mutation: %v", err)
		}
	})
}

// requireSameRecords asserts semantic record equality: epochs and edge
// lists match pairwise.
func requireSameRecords(t *testing.T, a, b []wal.Record) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("record count changed across re-encode: %d != %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Epoch != b[i].Epoch {
			t.Fatalf("record %d epoch changed: %d != %d", i, a[i].Epoch, b[i].Epoch)
		}
		if len(a[i].Add) != len(b[i].Add) || len(a[i].Remove) != len(b[i].Remove) {
			t.Fatalf("record %d batch sizes changed", i)
		}
		for j := range a[i].Add {
			if a[i].Add[j] != b[i].Add[j] {
				t.Fatalf("record %d add[%d] changed: %v != %v", i, j, a[i].Add[j], b[i].Add[j])
			}
		}
		for j := range a[i].Remove {
			if a[i].Remove[j] != b[i].Remove[j] {
				t.Fatalf("record %d remove[%d] changed: %v != %v", i, j, a[i].Remove[j], b[i].Remove[j])
			}
		}
	}
}
