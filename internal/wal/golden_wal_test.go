package wal_test

// Backward-compatibility proof for the durability formats, mirroring the
// repo-root golden_test.go contract: the files under testdata/golden/ were
// written by the KRW1/KRS1 writers when this test was introduced and are
// never regenerated casually. Every future revision must still decode
// them, recover the pinned index state from them, and re-serialize the
// canonical ones byte-for-byte — so an on-disk format drift fails here
// before it can strand anyone's write-ahead log, and deliberate revisions
// are forced into a new magic instead of silently rewriting KRW1.
//
// The fixture story runs over the paper's Figure 1 graph (a..j as 0..9):
//
//	tiny.wal   three batches — add j→a (epoch 3); add f→g, remove b→d
//	           (epoch 5); add h→c (epoch 9)
//	torn.wal   tiny.wal with its last 5 bytes torn off mid-record, the
//	           canonical kill-mid-append artifact
//	empty.wal  a freshly initialized log: magic header only
//	tiny.krs   a KRS1 snapshot of the unmutated Figure 1 graph at epoch 42

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"kreach/internal/dynamic"
	"kreach/internal/graph"
	"kreach/internal/testgraph"
	"kreach/internal/wal"
)

func readGoldenWAL(t *testing.T, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "golden", name))
	if err != nil {
		t.Fatalf("golden file missing (never delete or regenerate these): %v", err)
	}
	return data
}

// recoverGolden recovers a dynamic index from golden fixture files staged
// as a crashed durability directory.
func recoverGolden(t *testing.T, logFixture, snapFixture string) (*wal.Store, *dynamic.Index, wal.RecoveryStats, string) {
	t.Helper()
	dir := t.TempDir()
	if logFixture != "" {
		if err := os.WriteFile(filepath.Join(dir, "wal.log"), readGoldenWAL(t, logFixture), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if snapFixture != "" {
		if err := os.WriteFile(filepath.Join(dir, "snapshot.krs"), readGoldenWAL(t, snapFixture), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	st, ix, rs := openRecover(t, dir, testgraph.PaperFigure1(), wal.Options{})
	return st, ix, rs, dir
}

var goldenRecords = []wal.Record{
	{Epoch: 3, Add: []graph.Edge{edge(9, 0)}},
	{Epoch: 5, Add: []graph.Edge{edge(5, 6)}, Remove: []graph.Edge{edge(1, 3)}},
	{Epoch: 9, Add: []graph.Edge{edge(7, 2)}},
}

func TestGoldenLogDecodesByteForByte(t *testing.T) {
	raw := readGoldenWAL(t, "tiny.wal")
	recs, valid, err := wal.DecodeLog(raw)
	if err != nil {
		t.Fatalf("golden log no longer decodes: %v", err)
	}
	if valid != len(raw) {
		t.Fatalf("golden log valid prefix %d of %d bytes", valid, len(raw))
	}
	requireSameRecords(t, goldenRecords, recs)
	if out := wal.AppendLog(nil, recs); !bytes.Equal(out, raw) {
		t.Fatal("KRW1 round-trip is no longer byte-identical: the log format drifted")
	}
}

// goldenPinnedReach are hand-derived 3-hop facts on Figure 1 after all
// three golden batches: j→a and h→c exist, b→d does not.
var goldenPinnedReach = []struct {
	s, d graph.Vertex
	want bool
}{
	{9, 1, true},  // j→a→b, 2 hops, via the epoch-3 add
	{5, 8, true},  // f→g→i, 2 hops, via the epoch-5 add
	{7, 1, true},  // h→c→b, 2 hops, via the epoch-9 add
	{1, 4, false}, // b→d→e died with the epoch-5 remove
	{0, 4, false}, // a→b→d→e likewise
	{3, 7, true},  // d→e→g→h, exactly 3, untouched by the log
	{3, 9, false}, // d→…→j needs 4
}

func TestGoldenLogRecovers(t *testing.T) {
	st, ix, rs, _ := recoverGolden(t, "tiny.wal", "")
	defer st.Close()
	if rs.Replayed != 3 || rs.TornTail {
		t.Fatalf("recovery stats drifted: %+v", rs)
	}
	if ix.Epoch() != 9 {
		t.Fatalf("recovered epoch %d, want 9", ix.Epoch())
	}
	sc := dynamic.NewQueryScratch()
	for _, q := range goldenPinnedReach {
		if got := ix.Reach(q.s, q.d, sc); got != q.want {
			t.Fatalf("golden recovery answers Reach(%d,%d) = %v, want %v", q.s, q.d, got, q.want)
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGoldenTornLogRecovers(t *testing.T) {
	raw := readGoldenWAL(t, "torn.wal")
	recs, valid, err := wal.DecodeLog(raw)
	if !errors.Is(err, wal.ErrTornTail) {
		t.Fatalf("torn golden log decoded with %v, want ErrTornTail", err)
	}
	requireSameRecords(t, goldenRecords[:2], recs)

	st, ix, rs, dir := recoverGolden(t, "torn.wal", "")
	defer st.Close()
	if rs.Replayed != 2 || !rs.TornTail {
		t.Fatalf("recovery stats drifted: %+v", rs)
	}
	if ix.Epoch() != 5 {
		t.Fatalf("recovered epoch %d, want 5", ix.Epoch())
	}
	sc := dynamic.NewQueryScratch()
	// The epoch-9 batch is torn away: h→c never happened, the rest holds.
	for _, q := range goldenPinnedReach {
		want := q.want
		if q.s == 7 && q.d == 1 {
			want = false
		}
		if got := ix.Reach(q.s, q.d, sc); got != want {
			t.Fatalf("torn recovery answers Reach(%d,%d) = %v, want %v", q.s, q.d, got, want)
		}
	}
	// Recovery must have physically truncated the tail to the valid prefix.
	onDisk, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(onDisk) != valid {
		t.Fatalf("post-recovery torn log is %d bytes, want %d", len(onDisk), valid)
	}
	if !bytes.Equal(onDisk, raw[:valid]) {
		t.Fatal("post-recovery torn log is not the valid prefix")
	}
}

func TestGoldenEmptyLog(t *testing.T) {
	raw := readGoldenWAL(t, "empty.wal")
	recs, valid, err := wal.DecodeLog(raw)
	if err != nil || len(recs) != 0 || valid != len(raw) {
		t.Fatalf("empty golden log decoded to %d records, valid %d, err %v", len(recs), valid, err)
	}
	if out := wal.AppendLog(nil, nil); !bytes.Equal(out, raw) {
		t.Fatal("freshly initialized log header is no longer byte-identical to the golden one")
	}
	st, ix, rs, _ := recoverGolden(t, "empty.wal", "")
	defer st.Close()
	if rs.Replayed != 0 || rs.TornTail || rs.SnapshotEpoch != 0 {
		t.Fatalf("recovery stats drifted: %+v", rs)
	}
	// Unmutated Figure 1 under k=3: Example 2's verdicts.
	sc := dynamic.NewQueryScratch()
	if !ix.Reach(1, 6, sc) || ix.Reach(1, 7, sc) {
		t.Fatal("empty-log recovery does not answer like the base graph")
	}
}

func TestGoldenSnapshotDecodesByteForByte(t *testing.T) {
	raw := readGoldenWAL(t, "tiny.krs")
	g, epoch, err := wal.DecodeSnapshot(raw)
	if err != nil {
		t.Fatalf("golden snapshot no longer decodes: %v", err)
	}
	if epoch != 42 {
		t.Fatalf("golden snapshot epoch %d, want 42", epoch)
	}
	if g.NumVertices() != 10 || g.NumEdges() != 9 || !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("golden snapshot graph changed shape")
	}
	if out := wal.AppendSnapshot(nil, g, epoch); !bytes.Equal(out, raw) {
		t.Fatal("KRS1 round-trip is no longer byte-identical: the snapshot format drifted")
	}

	// Snapshot-only recovery: the epoch survives even with an absent log.
	st, ix, rs, _ := recoverGolden(t, "", "tiny.krs")
	defer st.Close()
	if rs.SnapshotEpoch != 42 || rs.Replayed != 0 {
		t.Fatalf("recovery stats drifted: %+v", rs)
	}
	if ix.Epoch() != 42 {
		t.Fatalf("snapshot-only recovery epoch %d, want 42", ix.Epoch())
	}
	if got := st.Stats().LastEpoch; got != 42 {
		t.Fatalf("snapshot-only recovery last_epoch %d, want 42", got)
	}
}
