package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"kreach/internal/graph"
)

// On-disk log format (little endian):
//
//	magic "KRW1"
//	records, each:
//	    uint32 payload length | uint32 crc32-IEEE of payload | payload
//	payload:
//	    uvarint epoch |
//	    uvarint nAdd  | nAdd  × (uvarint src, uvarint dst) |
//	    uvarint nRem  | nRem  × (uvarint src, uvarint dst)
//
// The length prefix lets the reader detect a torn tail (a record the
// process died inside of) without scanning for a resync marker, and the
// CRC rejects bit rot and half-flushed sector interleavings. Everything
// after the first invalid byte is dropped: a WAL has no authority to
// reorder history, so a record is durable only if every record before it
// is too.

var logMagic = [4]byte{'K', 'R', 'W', '1'}

const (
	recordHeaderSize = 8
	// maxRecordBytes caps the payload size a length prefix may declare
	// before any allocation happens: far above every real mutation batch
	// (the serving layer caps batches long before this), far below what
	// would let a corrupt 4-byte prefix demand gigabytes.
	maxRecordBytes = 1 << 26
	// maxVertexID mirrors the int32 vertex ids of the graph package; a
	// decoded endpoint beyond it is corruption, not a big graph.
	maxVertexID = math.MaxInt32 - 1
)

// ErrBadRecord reports a structurally invalid record: a corrupt length
// prefix, CRC mismatch, or payload that does not decode. Readers treat it
// as the end of the valid log prefix.
var ErrBadRecord = errors.New("wal: bad record")

// ErrTornTail reports a record the log ends inside of — the classic
// crash-mid-append shape. Like ErrBadRecord it ends the valid prefix.
var ErrTornTail = errors.New("wal: torn record at log tail")

// ErrBadMagic reports a log file that does not start with the KRW1 magic;
// the store refuses to touch it rather than truncate a foreign file.
var ErrBadMagic = errors.New("wal: bad log magic")

// Record is one durable mutation batch: the epoch reserved for it plus the
// in-range edge operations exactly as the index was asked to apply them.
type Record struct {
	Epoch  uint64
	Add    []graph.Edge
	Remove []graph.Edge
}

// appendRecord appends the framed encoding of rec to buf.
func appendRecord(buf []byte, rec Record) []byte {
	payload := binary.AppendUvarint(nil, rec.Epoch)
	payload = appendEdges(payload, rec.Add)
	payload = appendEdges(payload, rec.Remove)
	var hdr [recordHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

func appendEdges(buf []byte, edges []graph.Edge) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(edges)))
	for _, e := range edges {
		buf = binary.AppendUvarint(buf, uint64(e.Src))
		buf = binary.AppendUvarint(buf, uint64(e.Dst))
	}
	return buf
}

// decodeRecord decodes one framed record from data. It returns the record
// and the total bytes consumed. A short buffer is ErrTornTail; anything
// structurally wrong is ErrBadRecord.
func decodeRecord(data []byte) (Record, int, error) {
	if len(data) < recordHeaderSize {
		return Record{}, 0, ErrTornTail
	}
	size := binary.LittleEndian.Uint32(data[0:4])
	if size > maxRecordBytes {
		return Record{}, 0, fmt.Errorf("%w: implausible payload length %d", ErrBadRecord, size)
	}
	if len(data) < recordHeaderSize+int(size) {
		return Record{}, 0, ErrTornTail
	}
	payload := data[recordHeaderSize : recordHeaderSize+int(size)]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[4:8]) {
		return Record{}, 0, fmt.Errorf("%w: checksum mismatch", ErrBadRecord)
	}
	rec, err := decodePayload(payload)
	if err != nil {
		return Record{}, 0, err
	}
	return rec, recordHeaderSize + int(size), nil
}

func decodePayload(payload []byte) (Record, error) {
	off := 0
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(payload[off:])
		if n <= 0 {
			return 0, fmt.Errorf("%w: truncated varint", ErrBadRecord)
		}
		off += n
		return v, nil
	}
	readEdges := func() ([]graph.Edge, error) {
		count, err := readUvarint()
		if err != nil {
			return nil, err
		}
		// Each edge consumes at least two payload bytes; a count beyond
		// that is corrupt, checked before the slice is sized.
		if count > uint64(len(payload)-off)/2 {
			return nil, fmt.Errorf("%w: implausible edge count %d in %d payload bytes",
				ErrBadRecord, count, len(payload))
		}
		edges := make([]graph.Edge, 0, count)
		for i := uint64(0); i < count; i++ {
			s, err := readUvarint()
			if err != nil {
				return nil, err
			}
			d, err := readUvarint()
			if err != nil {
				return nil, err
			}
			if s > maxVertexID || d > maxVertexID {
				return nil, fmt.Errorf("%w: vertex id out of range", ErrBadRecord)
			}
			edges = append(edges, graph.Edge{Src: graph.Vertex(s), Dst: graph.Vertex(d)})
		}
		return edges, nil
	}
	var rec Record
	var err error
	if rec.Epoch, err = readUvarint(); err != nil {
		return rec, err
	}
	if rec.Add, err = readEdges(); err != nil {
		return rec, err
	}
	if rec.Remove, err = readEdges(); err != nil {
		return rec, err
	}
	if off != len(payload) {
		return rec, fmt.Errorf("%w: %d trailing payload bytes", ErrBadRecord, len(payload)-off)
	}
	return rec, nil
}

// DecodeLog decodes a full log image. It returns every record of the valid
// prefix, the byte length of that prefix (magic included — the offset a
// recovery truncates the file to), and the error that ended the scan: nil
// for a clean end-of-log, ErrTornTail/ErrBadRecord for a tail to truncate,
// ErrBadMagic for a file that is not a KRW1 log at all (zero-length logs
// are valid and empty; a partially written magic is a torn tail of an
// empty log).
func DecodeLog(data []byte) ([]Record, int, error) {
	recs, _, valid, err := decodeLogMarks(data)
	return recs, valid, err
}

// recMark locates one record inside the on-disk log: its epoch plus the
// absolute file offset just past its framing. The store keeps one mark per
// live record so the feed can slice raw record bytes straight out of the
// file and checkpoints can retain an exact epoch window.
type recMark struct {
	epoch uint64
	end   int64
}

// decodeLogMarks is DecodeLog plus a parallel offset index over the valid
// prefix (marks[i].end is where record i's framing ends, magic included).
func decodeLogMarks(data []byte) ([]Record, []recMark, int, error) {
	if len(data) < len(logMagic) {
		if len(data) == 0 {
			return nil, nil, 0, nil
		}
		if string(data) == string(logMagic[:len(data)]) {
			return nil, nil, 0, ErrTornTail
		}
		return nil, nil, 0, ErrBadMagic
	}
	if [4]byte(data[:4]) != logMagic {
		return nil, nil, 0, ErrBadMagic
	}
	var recs []Record
	var marks []recMark
	off := len(logMagic)
	for off < len(data) {
		rec, n, err := decodeRecord(data[off:])
		if err != nil {
			return recs, marks, off, err
		}
		off += n
		recs = append(recs, rec)
		marks = append(marks, recMark{epoch: rec.Epoch, end: int64(off)})
	}
	return recs, marks, off, nil
}

// AppendLog appends the framed encoding of recs — a full log image when
// buf starts empty — to buf. Tests and the golden fixtures use it; the
// store itself encodes record by record as batches arrive.
func AppendLog(buf []byte, recs []Record) []byte {
	buf = append(buf, logMagic[:]...)
	for _, rec := range recs {
		buf = appendRecord(buf, rec)
	}
	return buf
}
