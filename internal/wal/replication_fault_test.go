package wal_test

// Follower-side journal fault (ISSUE 10 satellite 2, local-disk half): a
// follower applies replicated records through Index.ApplyRecord, which
// journals them under the primary's exact epochs. When the follower's own
// log dies mid-record, the apply must fail with the in-memory state rolled
// back, the durable prefix must survive untouched, and a restart must
// resume from the last durable epoch — tail-served by the primary, no
// re-shipped snapshot — and converge to the primary's exact epoch and
// edge set.

import (
	"errors"
	"testing"

	"kreach/internal/dynamic"
	"kreach/internal/graph"
	"kreach/internal/testgraph"
	"kreach/internal/wal"
	"kreach/internal/wal/waltest"
	"kreach/internal/workload"
)

func TestReplicatedApplyJournalFaultResumes(t *testing.T) {
	base := testgraph.Random(20, 40, 9)
	n := base.NumVertices()

	// Primary: eight single-op batches, full history retained in the log.
	pst, pix, _ := openRecover(t, t.TempDir(), base, wal.Options{})
	defer pst.Close()
	ms := workload.NewMutationStream(base, 31, workload.MutationMix{Add: 0.6, Remove: 0.4})
	var final uint64
	for applied := 0; applied < 8; {
		var add, remove []graph.Edge
		switch op := ms.Next(); op.Kind {
		case workload.OpAdd:
			add = []graph.Edge{{Src: op.U, Dst: op.V}}
		case workload.OpRemove:
			remove = []graph.Edge{{Src: op.U, Dst: op.V}}
		default:
			continue
		}
		res, err := pix.Mutate(add, remove)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Applied() {
			t.Fatalf("stream op did not apply: %+v", res)
		}
		final = res.Epoch
		applied++
	}
	ck, err := pst.FeedSince(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := wal.DecodeRecords(ck.Records)
	if err != nil || len(recs) != 8 {
		t.Fatalf("feed carried %d records (err %v), want 8", len(recs), err)
	}

	// Follower over a journal that will die mid-record: the first four
	// replicated applies land durably, the fifth tears.
	fDir := t.TempDir()
	ff := &waltest.FailFile{Remaining: 1 << 20}
	fst, fix, _ := openRecover(t, fDir, base, failOpen(wal.Options{}, ff))
	for _, rec := range recs[:4] {
		if _, err := fix.ApplyRecord(rec.Add, rec.Remove, rec.Epoch); err != nil {
			t.Fatal(err)
		}
	}
	durable := recs[3].Epoch
	goodBytes := fst.Stats().LogBytes
	ff.Remaining = 5
	if _, err := fix.ApplyRecord(recs[4].Add, recs[4].Remove, recs[4].Epoch); !errors.Is(err, waltest.ErrInjected) {
		t.Fatalf("replicated apply survived a dead journal: err = %v", err)
	}
	if fix.Epoch() != durable {
		t.Fatalf("failed apply moved the cursor: epoch %d, want %d", fix.Epoch(), durable)
	}
	if got := fst.Stats().LogBytes; got != goodBytes {
		t.Fatalf("torn journal prefix kept: %d bytes, want %d", got, goodBytes)
	}
	fst.Close()

	// Restart over the same directory with a healthy disk: recovery resumes
	// from the last durable epoch, and the primary can tail-serve the rest —
	// the cursor sits inside the retained log, so no snapshot re-ships.
	fst2, fix2, rs := openRecover(t, fDir, base, wal.Options{})
	defer fst2.Close()
	if rs.Replayed != 4 || fix2.Epoch() != durable {
		t.Fatalf("recovery replayed %d records to epoch %d, want 4 to %d", rs.Replayed, fix2.Epoch(), durable)
	}
	ck2, err := pst.FeedSince(fix2.Epoch(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if ck2.Snapshot != nil {
		t.Fatal("resume inside the retained log re-shipped a snapshot")
	}
	recs2, err := wal.DecodeRecords(ck2.Records)
	if err != nil || len(recs2) != 4 {
		t.Fatalf("resume feed carried %d records (err %v), want 4", len(recs2), err)
	}
	for _, rec := range recs2 {
		if rec.Epoch <= fix2.Epoch() {
			continue
		}
		if _, err := fix2.ApplyRecord(rec.Add, rec.Remove, rec.Epoch); err != nil {
			t.Fatal(err)
		}
	}
	if fix2.Epoch() != final || fix2.Epoch() != pix.Epoch() {
		t.Fatalf("follower at epoch %d, primary at %d (want %d)", fix2.Epoch(), pix.Epoch(), final)
	}

	// Full-pair answer equality against a BFS oracle over the stream's
	// ground-truth edge set — zero mismatches, the campaign's bar.
	oracle := testgraph.NewReachOracle(graph.FromEdges(n, ms.Edges()))
	sc := dynamic.NewQueryScratch()
	k := fix2.K()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			got := fix2.Reach(graph.Vertex(s), graph.Vertex(d), sc)
			if want := oracle.Reach(graph.Vertex(s), graph.Vertex(d), k); got != want {
				t.Fatalf("reach(%d,%d) = %v, oracle %v", s, d, got, want)
			}
		}
	}
}
