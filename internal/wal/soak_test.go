package wal_test

import (
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"testing"

	"kreach/internal/dynamic"
	"kreach/internal/graph"
	"kreach/internal/testgraph"
	"kreach/internal/wal"
	"kreach/internal/workload"
)

// The kill-and-recover soak: drive a durable index with a randomized
// mutation stream, crash it at arbitrary log bytes — truncations for
// kill-mid-append, bit flips for sector rot — and require recovery to be
// exact: the recovered index answers every pair like a BFS oracle over
// precisely the batch prefix the surviving log encodes, under precisely
// that prefix's epoch.

// soakState is the ground truth after one durable batch: the epoch it was
// acknowledged under, the log offset its record ends at, and the full edge
// set — enough to reconstruct an independent oracle for any crash point.
type soakState struct {
	epoch  uint64
	offset int64
	edges  []graph.Edge
}

// runBatches drives n applied mutation batches (1–3 ops each) from ms into
// ix, appending one soakState per batch.
func runBatches(t *testing.T, ix *dynamic.Index, st *wal.Store, ms *workload.MutationStream, rng *rand.Rand, n int, states []soakState) []soakState {
	t.Helper()
	for b := 0; b < n; b++ {
		var add, remove []graph.Edge
		for len(add)+len(remove) < 1+rng.IntN(3) {
			switch op := ms.Next(); op.Kind {
			case workload.OpAdd:
				add = append(add, graph.Edge{Src: op.U, Dst: op.V})
			case workload.OpRemove:
				remove = append(remove, graph.Edge{Src: op.U, Dst: op.V})
			}
		}
		res, err := ix.Mutate(add, remove)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Applied() {
			t.Fatalf("stream batch did not apply: %+v", res)
		}
		states = append(states, soakState{
			epoch:  res.Epoch,
			offset: st.Stats().LogBytes,
			edges:  ms.Edges(),
		})
	}
	return states
}

// verifyCrashPoint damages a copy of the durability directory (truncating
// the log to cut bytes, or flipping the byte at cut), recovers from it, and
// asserts exactness against the prefix of states the damaged log encodes.
// checkpointed is the prefix index the snapshot (if any) holds, -1 for
// none; states[0] is the pre-mutation base state.
func verifyCrashPoint(t *testing.T, srcDir string, base *graph.Graph, states []soakState, cut int64, flip bool, checkpointed int, trial string) {
	t.Helper()
	dir := t.TempDir()
	logData, err := os.ReadFile(filepath.Join(srcDir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if flip {
		logData = append([]byte(nil), logData...)
		logData[cut] ^= 1 << uint(cut%8)
	} else {
		logData = logData[:cut]
	}
	if err := os.WriteFile(filepath.Join(dir, "wal.log"), logData, 0o644); err != nil {
		t.Fatal(err)
	}
	if snap, err := os.ReadFile(filepath.Join(srcDir, "snapshot.krs")); err == nil {
		if err := os.WriteFile(filepath.Join(dir, "snapshot.krs"), snap, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// The surviving prefix: every batch whose record ends at or before the
	// damage point. (A flip at `cut` invalidates the record containing that
	// byte; a truncation to `cut` tears it. Either way batches with
	// offset ≤ cut survive intact.)
	want := 0
	for i, s := range states {
		if i > 0 && s.offset <= cut {
			want = i
		}
	}
	if checkpointed > want {
		// The log was truncated below what the snapshot already holds;
		// recovery can never fall behind the snapshot.
		want = checkpointed
	}

	st2, ix2, rs := openRecover(t, dir, base, wal.Options{})
	defer st2.Close()
	wantReplayed := want - max(checkpointed, 0)
	if rs.Replayed != wantReplayed {
		t.Fatalf("%s: replayed %d records, want %d (prefix %d, snapshot prefix %d)",
			trial, rs.Replayed, wantReplayed, want, checkpointed)
	}
	// Epoch exactness. Prefix 0 with no snapshot is the one state with no
	// durable epoch (the writer's initial generation was never journaled):
	// recovery issues a fresh one there, and monotonicity is checked below.
	if want > 0 && ix2.Epoch() != states[want].epoch {
		t.Fatalf("%s: recovered epoch %d, want %d (prefix %d)",
			trial, ix2.Epoch(), states[want].epoch, want)
	}

	// Answer exactness: every pair, against an oracle rebuilt from the
	// surviving prefix's recorded edge set.
	n := base.NumVertices()
	oracle := testgraph.NewReachOracle(graph.FromEdges(n, states[want].edges))
	sc := dynamic.NewQueryScratch()
	k := ix2.K()
	mismatches := 0
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			got := ix2.Reach(graph.Vertex(s), graph.Vertex(d), sc)
			if exp := oracle.Reach(graph.Vertex(s), graph.Vertex(d), k); got != exp {
				mismatches++
				if mismatches <= 3 {
					t.Errorf("%s: reach(%d,%d) = %v, oracle says %v", trial, s, d, got, exp)
				}
			}
		}
	}
	if mismatches > 0 {
		t.Fatalf("%s: %d mismatches over %d pairs at prefix %d", trial, mismatches, n*n, want)
	}
	if err := ix2.CheckInvariants(); err != nil {
		t.Fatalf("%s: %v", trial, err)
	}

	// Monotonicity: the next applied mutation must take a strictly newer
	// epoch than anything recovered, or epoch-keyed caches could serve a
	// pre-crash answer for post-recovery state.
	pre := ix2.Epoch()
	if res, err := ix2.Mutate(nil, []graph.Edge{states[want].edges[0]}); err != nil {
		t.Fatalf("%s: post-recovery mutation: %v", trial, err)
	} else if !res.Applied() || res.Epoch <= pre || res.Epoch <= states[len(states)-1].epoch {
		t.Fatalf("%s: post-recovery epoch %d not above recovered %d and last pre-crash %d",
			trial, res.Epoch, pre, states[len(states)-1].epoch)
	}
}

func TestCrashRecoverySoak(t *testing.T) {
	const (
		nVertices = 24
		nEdges    = 48
		batches   = 24
		randCuts  = 24
		randFlips = 16
	)
	rng := rand.New(rand.NewPCG(0xC0FFEE, 7))
	base := testgraph.Random(nVertices, nEdges, 11)
	ms := workload.NewMutationStream(base, 23, workload.MutationMix{Add: 0.6, Remove: 0.4})

	srcDir := t.TempDir()
	st, ix, _ := openRecover(t, srcDir, base, wal.Options{})
	states := []soakState{{offset: 4, edges: base.Edges()}}
	states = runBatches(t, ix, st, ms, rng, batches, states)
	st.Close()
	logLen := states[len(states)-1].offset

	// Every record boundary exactly, and one byte short of it (torn tail).
	for i := 1; i < len(states); i++ {
		verifyCrashPoint(t, srcDir, base, states, states[i].offset, false, -1,
			fmt.Sprintf("boundary[%d]", i))
		verifyCrashPoint(t, srcDir, base, states, states[i].offset-1, false, -1,
			fmt.Sprintf("boundary[%d]-1", i))
	}
	// Random kill points anywhere in the file, header and magic included.
	for i := 0; i < randCuts; i++ {
		cut := rng.Int64N(logLen + 1)
		verifyCrashPoint(t, srcDir, base, states, cut, false, -1,
			fmt.Sprintf("cut[%d]@%d", i, cut))
	}
	// Random single-bit rot after the magic.
	for i := 0; i < randFlips; i++ {
		pos := 4 + rng.Int64N(logLen-4)
		verifyCrashPoint(t, srcDir, base, states, pos, true, -1,
			fmt.Sprintf("flip[%d]@%d", i, pos))
	}
}

// TestCrashRecoverySoakWithCheckpoint reruns the soak across a compaction:
// crashes after the checkpoint must recover from snapshot + log suffix,
// including the prefix-0 case where the log is empty and the recovered
// epoch is the snapshot's.
func TestCrashRecoverySoakWithCheckpoint(t *testing.T) {
	const (
		nVertices = 24
		nEdges    = 48
		preBatch  = 8
		postBatch = 10
		randCuts  = 16
	)
	rng := rand.New(rand.NewPCG(0xBEEF, 3))
	base := testgraph.Random(nVertices, nEdges, 5)
	ms := workload.NewMutationStream(base, 29, workload.MutationMix{Add: 0.6, Remove: 0.4})

	srcDir := t.TempDir()
	st, ix, _ := openRecover(t, srcDir, base, wal.Options{})
	states := []soakState{{offset: 4, edges: base.Edges()}}
	states = runBatches(t, ix, st, ms, rng, preBatch, states)

	next, err := ix.Compact(nil)
	if err != nil {
		t.Fatal(err)
	}
	ix = next
	// The checkpoint is itself a durable state: log truncated to the magic,
	// snapshot at the successor's epoch, same edge set as the last batch.
	checkpointed := len(states)
	states = append(states, soakState{
		epoch:  next.Epoch(),
		offset: 4,
		edges:  states[len(states)-1].edges,
	})
	states = runBatches(t, ix, st, ms, rng, postBatch, states)
	st.Close()
	logLen := states[len(states)-1].offset

	for i := checkpointed; i < len(states); i++ {
		verifyCrashPoint(t, srcDir, base, states, states[i].offset, false, checkpointed,
			fmt.Sprintf("boundary[%d]", i))
	}
	for i := 0; i < randCuts; i++ {
		cut := rng.Int64N(logLen + 1)
		verifyCrashPoint(t, srcDir, base, states, cut, false, checkpointed,
			fmt.Sprintf("cut[%d]@%d", i, cut))
	}
}
