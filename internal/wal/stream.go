package wal

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Replication feed wire format ("KRF1", little endian):
//
//	magic "KRF1"
//	frames, each:
//	    uint8 kind | uint32 payload length | uint32 crc32-IEEE(kind ∥ payload) | payload
//
//	kind 1 snapshot:  a complete KRS1 snapshot image
//	kind 2 records:   concatenated KRW1 record framings (no magic),
//	                  byte-for-byte as they sit in the primary's log — the
//	                  per-record CRCs written at append time travel intact
//	kind 3 heartbeat: uint64 newest durable epoch | uint64 served-through epoch
//
// Every chunk starts with one heartbeat frame, so a follower learns the
// primary's epoch (for lag accounting) before any state arrives, and — when
// any snapshot or records frame follows — ends with an identical heartbeat
// acting as the commit marker. The served-through epoch is the chunk's
// completeness promise: after applying every frame, the follower's state
// equals the primary's state at exactly that epoch. It trails the newest
// durable epoch only when a chunk was cut short by the byte cap; it exceeds
// the last record's epoch when a primary compaction issued a fresh epoch
// without a record (same edges, newer epoch) — the follower adopts the gap
// as an epoch marker. A consumer must treat served-through as binding ONLY
// when the last frame it read was a heartbeat: a stream cut at a frame
// boundary by a byzantine middlebox is a well-formed prefix the transport
// cannot flag, and without the trailing commit rule the leading heartbeat's
// promise would make the consumer adopt an epoch whose records it never saw.
//
// The frame CRC guards the transport (proxies, partial buffers, bit rot in
// flight); the inner KRW1 CRCs remain the durability check once records
// land in the follower's own log. A frame that fails either check kills
// the whole chunk: the follower resumes from its last durable epoch, so a
// torn or corrupt stream can delay replication but never skew it.

var feedMagic = [4]byte{'K', 'R', 'F', '1'}

// Frame kinds.
const (
	FrameSnapshot  byte = 1
	FrameRecords   byte = 2
	FrameHeartbeat byte = 3
)

const (
	frameHeaderSize = 9
	heartbeatSize   = 16
	// maxFramePayload caps what a frame header may demand before any
	// allocation happens; snapshots of real datasets sit far below it.
	maxFramePayload = 1 << 30
)

// ErrBadFeed reports a structurally invalid feed stream: bad magic, an
// unknown frame kind, a frame checksum mismatch, or a records payload that
// does not decode.
var ErrBadFeed = errors.New("wal: bad feed frame")

// ErrTornFeed reports a feed stream that ends mid-frame — the shape of a
// primary dying mid-ship or a connection cut. The consumer discards the
// torn remainder and resumes from its last durable epoch.
var ErrTornFeed = errors.New("wal: torn feed stream")

// FeedChunk is one replication feed response: optionally a full snapshot,
// then raw log records, plus the epoch bookkeeping a follower needs to
// resume exactly.
type FeedChunk struct {
	// Snapshot is a complete KRS1 image when the requested epoch predates
	// the retained log (or the requester is cold/divergent); nil when the
	// log can serve the gap.
	Snapshot []byte
	// Records holds concatenated KRW1 record framings sliced straight from
	// the log file, on-disk CRCs preserved.
	Records    []byte
	NumRecords int
	// ResumeFrom is the epoch the records resume after: the request's
	// from-epoch in tail mode, the shipped snapshot's epoch otherwise.
	ResumeFrom uint64
	// LastEpoch is the primary's newest durable epoch at capture time.
	LastEpoch uint64
	// ServedThrough is the chunk's completeness promise: applying the whole
	// chunk leaves the follower state-identical to the primary at exactly
	// this epoch. Equal to LastEpoch unless the byte cap cut the chunk.
	ServedThrough uint64
}

// AppendWire appends the chunk's KRF1 encoding to buf: magic, one
// heartbeat frame, then the snapshot and records frames when present,
// closed by a second identical heartbeat — the commit marker that lets a
// consumer distinguish a complete chunk from a prefix cut at a frame
// boundary.
func (c FeedChunk) AppendWire(buf []byte) []byte {
	buf = append(buf, feedMagic[:]...)
	var hb [heartbeatSize]byte
	binary.LittleEndian.PutUint64(hb[0:8], c.LastEpoch)
	binary.LittleEndian.PutUint64(hb[8:16], c.ServedThrough)
	buf = appendFrame(buf, FrameHeartbeat, hb[:])
	state := false
	if c.Snapshot != nil {
		buf = appendFrame(buf, FrameSnapshot, c.Snapshot)
		state = true
	}
	if len(c.Records) > 0 {
		buf = appendFrame(buf, FrameRecords, c.Records)
		state = true
	}
	if state {
		buf = appendFrame(buf, FrameHeartbeat, hb[:])
	}
	return buf
}

func appendFrame(buf []byte, kind byte, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[5:9], frameSum(kind, payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// frameSum checksums a frame's kind byte together with its payload, so a
// flipped kind cannot reinterpret an otherwise-valid payload.
func frameSum(kind byte, payload []byte) uint32 {
	sum := crc32.Update(0, crc32.IEEETable, []byte{kind})
	return crc32.Update(sum, crc32.IEEETable, payload)
}

// FeedFrame is one decoded wire frame.
type FeedFrame struct {
	Kind    byte
	Payload []byte
}

// Heartbeat decodes a heartbeat frame's epochs.
func (f FeedFrame) Heartbeat() (lastEpoch, servedThrough uint64, err error) {
	if f.Kind != FrameHeartbeat {
		return 0, 0, fmt.Errorf("%w: not a heartbeat frame", ErrBadFeed)
	}
	if len(f.Payload) != heartbeatSize {
		return 0, 0, fmt.Errorf("%w: heartbeat payload is %d bytes, want %d", ErrBadFeed, len(f.Payload), heartbeatSize)
	}
	return binary.LittleEndian.Uint64(f.Payload[0:8]), binary.LittleEndian.Uint64(f.Payload[8:16]), nil
}

// FeedReader decodes a KRF1 stream frame by frame.
type FeedReader struct {
	r       io.Reader
	started bool
}

// NewFeedReader wraps r, which must carry one complete KRF1 stream.
func NewFeedReader(r io.Reader) *FeedReader {
	return &FeedReader{r: r}
}

// Next returns the next frame, io.EOF at a clean end-of-stream (a frame
// boundary after at least the magic), ErrTornFeed when the stream dies
// mid-frame, and ErrBadFeed for structural corruption. The payload is
// freshly allocated and CRC-verified.
func (fr *FeedReader) Next() (FeedFrame, error) {
	if !fr.started {
		var magic [4]byte
		if _, err := io.ReadFull(fr.r, magic[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return FeedFrame{}, fmt.Errorf("%w: truncated magic", ErrTornFeed)
			}
			return FeedFrame{}, err
		}
		if magic != feedMagic {
			return FeedFrame{}, fmt.Errorf("%w: bad magic %q", ErrBadFeed, magic[:])
		}
		fr.started = true
	}
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		if err == io.EOF {
			return FeedFrame{}, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return FeedFrame{}, fmt.Errorf("%w: truncated frame header", ErrTornFeed)
		}
		return FeedFrame{}, err
	}
	kind := hdr[0]
	if kind < FrameSnapshot || kind > FrameHeartbeat {
		return FeedFrame{}, fmt.Errorf("%w: unknown frame kind %d", ErrBadFeed, kind)
	}
	size := binary.LittleEndian.Uint32(hdr[1:5])
	if size > maxFramePayload {
		return FeedFrame{}, fmt.Errorf("%w: implausible frame length %d", ErrBadFeed, size)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return FeedFrame{}, fmt.Errorf("%w: truncated frame payload", ErrTornFeed)
		}
		return FeedFrame{}, err
	}
	if frameSum(kind, payload) != binary.LittleEndian.Uint32(hdr[5:9]) {
		return FeedFrame{}, fmt.Errorf("%w: frame checksum mismatch", ErrBadFeed)
	}
	return FeedFrame{Kind: kind, Payload: payload}, nil
}

// DecodeRecords decodes a records-frame payload into its records. The
// frame CRC already vouched for the bytes in flight, so any decode failure
// here is protocol corruption: the whole frame is rejected, nothing
// partial is returned.
func DecodeRecords(payload []byte) ([]Record, error) {
	var recs []Record
	off := 0
	for off < len(payload) {
		rec, n, err := decodeRecord(payload[off:])
		if err != nil {
			return nil, fmt.Errorf("%w: record at offset %d: %v", ErrBadFeed, off, err)
		}
		off += n
		recs = append(recs, rec)
	}
	return recs, nil
}

// FeedSince captures one replication chunk for a consumer whose last
// applied epoch is from. Tail mode — records only — requires the log to
// provably hold every record newer than from: from must be at or above the
// tail floor and at or below the newest durable epoch. Anything else (cold
// start at 0, a cursor older than the retained window, or a cursor from a
// future this store never had — a divergent ex-primary) ships a full
// snapshot first. maxBytes > 0 caps the records region at a record
// boundary; at least one record is always served, and ServedThrough tells
// the consumer how far the cut chunk is complete.
func (s *Store) FeedSince(from uint64, maxBytes int) (FeedChunk, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ready {
		return FeedChunk{}, ErrNotRecovered
	}
	s.feedRequests.Add(1)
	ck := FeedChunk{LastEpoch: s.lastEpoch, ServedThrough: s.lastEpoch}
	start := from
	if tail := from > 0 && from >= s.tailFloor && from <= s.lastEpoch; !tail {
		snap, epoch, err := s.snapshotImageLocked()
		if err != nil {
			return FeedChunk{}, err
		}
		ck.Snapshot = snap
		start = epoch
		s.feedSnapshots.Add(1)
	}
	ck.ResumeFrom = start
	idx := sort.Search(len(s.recs), func(i int) bool { return s.recs[i].epoch > start })
	if idx == len(s.recs) {
		return ck, nil
	}
	begin := int64(len(logMagic))
	if idx > 0 {
		begin = s.recs[idx-1].end
	}
	last := len(s.recs) - 1
	if maxBytes > 0 {
		for last > idx && s.recs[last].end-begin > int64(maxBytes) {
			last--
		}
	}
	if last < len(s.recs)-1 {
		ck.ServedThrough = s.recs[last].epoch
	}
	data, err := s.readLogRangeLocked(begin, s.recs[last].end)
	if err != nil {
		return FeedChunk{}, fmt.Errorf("wal: feed: %w", err)
	}
	ck.Records = data
	ck.NumRecords = last - idx + 1
	s.feedRecords.Add(uint64(ck.NumRecords))
	return ck, nil
}

// snapshotImageLocked returns the current snapshot file's bytes, or — for
// a store that has never checkpointed — a snapshot of the recovery base
// synthesized at epoch 0: the consumer builds a fresh index over it and
// replays every record (all epochs are > 0), exactly recovery's own rule.
func (s *Store) snapshotImageLocked() ([]byte, uint64, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, snapshotName))
	if err == nil {
		return data, s.snapEpoch, nil
	}
	if !errors.Is(err, os.ErrNotExist) {
		return nil, 0, fmt.Errorf("wal: feed snapshot: %w", err)
	}
	if s.base == nil {
		return nil, 0, errors.New("wal: feed: no snapshot and no base graph")
	}
	return AppendSnapshot(nil, s.base, 0), 0, nil
}

// readLogRangeLocked reads log bytes [begin, end) through a fresh read
// handle (the append handle is O_APPEND/write-only).
func (s *Store) readLogRangeLocked(begin, end int64) ([]byte, error) {
	f, err := os.Open(filepath.Join(s.dir, logName))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, end-begin)
	n, err := f.ReadAt(buf, begin)
	if err == io.EOF && n == len(buf) {
		err = nil
	}
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// WaitForEpoch blocks until the store's newest durable epoch exceeds
// after, the context ends, the timeout elapses (0: no timeout), or the
// store closes. It reports whether durable progress actually happened —
// the feed's long-poll primitive.
func (s *Store) WaitForEpoch(ctx context.Context, after uint64, timeout time.Duration) bool {
	var expired <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		expired = t.C
	}
	for {
		s.mu.Lock()
		if !s.ready {
			s.mu.Unlock()
			return false
		}
		if s.lastEpoch > after {
			s.mu.Unlock()
			return true
		}
		ch := s.watch
		s.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return false
		case <-expired:
			return false
		}
	}
}
