package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"kreach/internal/core"
	"kreach/internal/dynamic"
	"kreach/internal/graph"
	"kreach/internal/obs"
)

// Package-global latency histograms, merged across stores (one serving
// process rarely runs more than a handful of WALs, and per-store splits
// are available via StoreStats). The serving layer adopts these into its
// /metrics registry; they are live even when no server is attached.
var (
	// AppendLatency is the full durable-append span: encode, write and —
	// under SyncAlways — the fsync.
	AppendLatency = obs.NewHistogram()
	// FsyncLatency is the fsync span alone, the disk's contribution to
	// AppendLatency (empty under SyncNever).
	FsyncLatency = obs.NewHistogram()
	// CheckpointLatency is the full checkpoint span: snapshot write, fsync,
	// rename, directory sync and log truncation.
	CheckpointLatency = obs.NewHistogram()
)

// SyncPolicy controls when appended records are forced to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs the log after every appended batch: a mutation is
	// acknowledged only once it would survive a crash. The default.
	SyncAlways SyncPolicy = iota
	// SyncNever leaves flushing to the OS: crash durability is bounded by
	// the kernel's writeback horizon, in exchange for mutation latency
	// that never waits on the disk.
	SyncNever
)

func (p SyncPolicy) String() string {
	if p == SyncNever {
		return "never"
	}
	return "always"
}

// File is the write surface the store needs from its log file. *os.File
// satisfies it; waltest wraps it to inject write/sync/truncate faults.
type File interface {
	io.Writer
	io.Closer
	Sync() error
	Truncate(size int64) error
}

// Options configures Open.
type Options struct {
	// Sync is the fsync policy for appended records (default SyncAlways).
	Sync SyncPolicy
	// RetainEpochs keeps the newest N log records across a checkpoint
	// instead of truncating the whole log. A follower whose cursor falls
	// inside the retained window streams records; outside it, the feed
	// re-ships a full snapshot. 0 (the default) preserves the original
	// truncate-everything behavior.
	RetainEpochs int
	// OpenFile overrides how the log file is opened for appending; nil
	// means os.OpenFile with O_APPEND. Fault-injection tests use it to
	// wrap the file in a waltest failpoint.
	OpenFile func(path string) (File, error)
}

func (o Options) openFile(path string) (File, error) {
	if o.OpenFile != nil {
		return o.OpenFile(path)
	}
	return os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
}

const (
	logName      = "wal.log"
	snapshotName = "snapshot.krs"
)

// ErrNotRecovered reports an Append or Checkpoint before Recover has
// established what the durable state is.
var ErrNotRecovered = errors.New("wal: store not recovered yet")

// Store is the durability directory of one dynamic dataset: a write-ahead
// log of mutation batches plus the latest compacted snapshot. It
// implements dynamic.Journal, so attaching it to a dynamic.Index (Recover
// does this) makes every mutation batch durable before it applies and
// every compaction a checkpoint that truncates the log.
//
// Concurrency: the index serializes journal calls behind its own mutation
// mutex; the store's lock exists so Stats and a concurrent writer never
// race, not to order writers.
type Store struct {
	dir  string
	opts Options

	mu        sync.Mutex
	f         File
	size      int64
	ready     bool
	broken    error // a failed append that could not be rolled back
	snapEpoch uint64
	lastEpoch uint64
	enc       []byte // append encoding scratch

	// recs indexes every live log record (epoch, end offset) in log order.
	// tailFloor is the feed's resume boundary: the log is guaranteed to
	// contain every record with epoch strictly greater than it, so a
	// follower at epoch >= tailFloor can tail records instead of
	// re-shipping a snapshot.
	recs      []recMark
	tailFloor uint64
	// base is the graph Recover rebuilt from; the feed synthesizes an
	// epoch-0 snapshot from it for cold-start followers of a store that
	// has never checkpointed.
	base *graph.Graph
	// watch is closed and replaced whenever durable state advances; feed
	// long-polls block on it.
	watch chan struct{}

	appended      atomic.Uint64
	syncs         atomic.Uint64
	replayed      atomic.Uint64
	checkpoints   atomic.Uint64
	truncations   atomic.Uint64
	feedRequests  atomic.Uint64
	feedSnapshots atomic.Uint64
	feedRecords   atomic.Uint64
}

// Open prepares the durability directory (creating it if needed) and
// returns a store. Nothing is read or written until Recover, which must
// run before the store accepts appends.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	return &Store{dir: dir, opts: opts, watch: make(chan struct{})}, nil
}

// RecoveryStats reports what Recover found.
type RecoveryStats struct {
	// SnapshotEpoch is the epoch of the compacted snapshot the index was
	// rebuilt from (0: no snapshot, the base graph was used).
	SnapshotEpoch uint64
	// Replayed counts the log records applied on top of the snapshot.
	Replayed int
	// TornTail reports that the log ended in an invalid or incomplete
	// record — the crash-mid-append shape — which was truncated away.
	TornTail bool
	// Epoch is the recovered index's epoch: exactly the epoch of the last
	// durable applied batch (or the snapshot's, or a fresh generation for
	// a virgin store).
	Epoch uint64
}

// Recover rebuilds the dataset's dynamic index from the durability
// directory: the compacted snapshot if one exists (base otherwise), plus a
// replay of every valid log record newer than the snapshot. A torn or
// corrupt log tail is truncated at the last valid record. The returned
// graph is the base the recovered overlay sits on (the snapshot's graph,
// or base). The store is attached to the returned index as its journal, so
// subsequent mutations append before they apply.
//
// The process generation counter is advanced past every recovered epoch
// before the index is built, so post-recovery epochs stay monotonic and an
// epoch-keyed cache can never serve a pre-crash answer for a newer state.
func (s *Store) Recover(base *graph.Graph, dopts dynamic.Options) (*dynamic.Index, *graph.Graph, RecoveryStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var st RecoveryStats
	if s.ready {
		return nil, nil, st, errors.New("wal: store already recovered")
	}

	g := base
	snapPath := filepath.Join(s.dir, snapshotName)
	if data, err := os.ReadFile(snapPath); err == nil {
		sg, epoch, derr := DecodeSnapshot(data)
		if derr != nil {
			return nil, nil, st, fmt.Errorf("wal: snapshot %s: %w", snapPath, derr)
		}
		if base != nil && sg.NumVertices() != base.NumVertices() {
			return nil, nil, st, fmt.Errorf(
				"wal: snapshot %s has %d vertices, base graph has %d — wrong durability directory?",
				snapPath, sg.NumVertices(), base.NumVertices())
		}
		g, s.snapEpoch, st.SnapshotEpoch = sg, epoch, epoch
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, nil, st, fmt.Errorf("wal: %w", err)
	}
	if g == nil {
		return nil, nil, st, errors.New("wal: no snapshot and no base graph")
	}

	logPath := filepath.Join(s.dir, logName)
	data, err := os.ReadFile(logPath)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, st, fmt.Errorf("wal: %w", err)
	}
	recs, marks, valid, derr := decodeLogMarks(data)
	if errors.Is(derr, ErrBadMagic) {
		// Not a KRW1 log: refuse to truncate a foreign file.
		return nil, nil, st, fmt.Errorf("wal: %s: %w", logPath, derr)
	}

	// Advance the generation counter past every persisted epoch before any
	// index construction issues a fresh one.
	maxEpoch := s.snapEpoch
	for _, rec := range recs {
		if rec.Epoch > maxEpoch {
			maxEpoch = rec.Epoch
		}
	}
	core.AdvanceGeneration(maxEpoch)

	ix, err := dynamic.New(g, dopts)
	if err != nil {
		return nil, nil, st, err
	}
	// The newest durable epoch starts at the snapshot's; replayed records
	// (always newer) advance it below.
	s.lastEpoch = s.snapEpoch
	adopted := false
	for _, rec := range recs {
		if rec.Epoch <= s.snapEpoch {
			// Remnant from before the last checkpoint: a crash landed
			// between the snapshot rename and the log truncation. The
			// snapshot already contains these batches.
			continue
		}
		res, err := ix.Replay(rec.Add, rec.Remove, rec.Epoch)
		if err != nil {
			return nil, nil, st, fmt.Errorf("wal: replaying record at epoch %d: %w", rec.Epoch, err)
		}
		st.Replayed++
		s.replayed.Add(1)
		s.lastEpoch = rec.Epoch
		// A record adopts its epoch when it changed the edge set, and also
		// when it is an empty epoch marker (a follower's durable note of a
		// primary compaction) — both leave the index at rec.Epoch.
		adopted = adopted || res.Epoch == rec.Epoch
	}
	if !adopted && s.snapEpoch > 0 {
		// No replayed batch changed the edge set, so the pre-crash epoch
		// was the snapshot's (issued for the compacted index).
		ix.RestoreEpoch(s.snapEpoch)
	}

	if derr != nil {
		st.TornTail = true
		if err := os.Truncate(logPath, int64(valid)); err != nil {
			return nil, nil, st, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		s.truncations.Add(1)
	}
	f, err := s.opts.openFile(logPath)
	if err != nil {
		return nil, nil, st, fmt.Errorf("wal: %w", err)
	}
	s.f, s.size = f, int64(valid)
	if valid == 0 {
		// Virgin (or fully torn) log: start it with the magic.
		if _, err := f.Write(logMagic[:]); err != nil {
			f.Close()
			return nil, nil, st, fmt.Errorf("wal: writing log header: %w", err)
		}
		s.size = int64(len(logMagic))
	}
	s.recs = marks
	s.base = g
	// Earlier checkpoints may have dropped records older than the first one
	// still in the log, so the provable feed floor after a restart is just
	// below the first retained record's epoch (the snapshot's when the log
	// is empty): epochs are integers, so no record can sit strictly between
	// epoch-1 and epoch, and everything strictly newer than the floor is
	// present — the first record included.
	if len(marks) > 0 {
		s.tailFloor = marks[0].epoch - 1
	} else {
		s.tailFloor = s.snapEpoch
	}
	s.ready = true
	st.Epoch = ix.Epoch()
	ix.SetJournal(s)
	return ix, g, st, nil
}

// Append makes one mutation batch durable; it implements dynamic.Journal
// and is called by Index.Mutate before anything applies. On a write or
// sync failure the half-written record is truncated away so the log stays
// a clean prefix of acknowledged batches; if even that repair fails the
// store wedges and every later append fails fast (queries keep serving,
// mutations are refused rather than silently non-durable).
func (s *Store) Append(epoch uint64, add, remove []graph.Edge) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ready {
		return ErrNotRecovered
	}
	if s.broken != nil {
		return fmt.Errorf("wal: log wedged by unrepaired append failure: %w", s.broken)
	}
	start := time.Now()
	defer func() { AppendLatency.Observe(time.Since(start)) }()
	s.enc = appendRecord(s.enc[:0], Record{Epoch: epoch, Add: add, Remove: remove})
	n, err := s.f.Write(s.enc)
	if err == nil && n != len(s.enc) {
		err = io.ErrShortWrite
	}
	if err != nil {
		s.rollback(err)
		return fmt.Errorf("wal: append: %w", err)
	}
	s.size += int64(n)
	if s.opts.Sync == SyncAlways {
		syncStart := time.Now()
		err := s.f.Sync()
		FsyncLatency.Observe(time.Since(syncStart))
		if err != nil {
			// The record's durability is unknown; roll it back so the
			// acknowledged history stays a prefix of the durable one.
			s.size -= int64(n)
			s.rollback(err)
			return fmt.Errorf("wal: fsync: %w", err)
		}
		s.syncs.Add(1)
	}
	s.appended.Add(1)
	s.lastEpoch = epoch
	s.recs = append(s.recs, recMark{epoch: epoch, end: s.size})
	s.notifyLocked()
	return nil
}

// notifyLocked wakes every feed long-poll blocked on durable progress.
func (s *Store) notifyLocked() {
	close(s.watch)
	s.watch = make(chan struct{})
}

// rollback truncates the log back to the last good record boundary after a
// failed append; if the truncate itself fails, a torn record would sit
// mid-file and hide every later append from recovery, so the store wedges.
func (s *Store) rollback(cause error) {
	if err := s.f.Truncate(s.size); err != nil {
		s.broken = cause
		return
	}
	s.truncations.Add(1)
}

// Checkpoint makes a compacted snapshot durable and trims the log; it
// implements dynamic.Journal and is called inside Index.Compact with the
// materialized graph and the successor's epoch, while the index's mutation
// mutex blocks concurrent appends. The snapshot is written to a temp file,
// fsynced and renamed over the old one, so a crash at any byte leaves
// either the old or the new snapshot — never a torn one; a crash after the
// rename but before the log trim is healed at recovery by the epoch filter
// (records at or below the snapshot epoch are skipped).
//
// With Options.RetainEpochs > 0 the newest N records survive the
// checkpoint (rewritten into a fresh log via temp+rename), so followers
// within that window keep streaming records; the feed floor rises to the
// epoch of the newest dropped record.
func (s *Store) Checkpoint(g *graph.Graph, epoch uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ready {
		return ErrNotRecovered
	}
	start := time.Now()
	defer func() { CheckpointLatency.Observe(time.Since(start)) }()
	if err := s.writeSnapshotLocked(g, epoch); err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	s.snapEpoch = epoch
	s.lastEpoch = epoch
	s.base = g
	keep := s.opts.RetainEpochs
	if keep > len(s.recs) {
		keep = len(s.recs)
	}
	drop := len(s.recs) - keep
	switch {
	case keep <= 0:
		// Every logged batch is folded into the snapshot: drop the
		// records, keep the magic.
		if len(s.recs) > 0 {
			s.tailFloor = s.recs[len(s.recs)-1].epoch
		}
		if err := s.f.Truncate(int64(len(logMagic))); err != nil {
			// The snapshot is durable, so recovery stays correct either way
			// (the epoch filter skips the stale records); report the failure
			// so the compaction surfaces it.
			return fmt.Errorf("wal: truncating log after checkpoint: %w", err)
		}
		s.size = int64(len(logMagic))
		s.recs = s.recs[:0]
	case drop == 0:
		// Retention window is wider than the log: nothing to trim.
	default:
		newFloor := s.recs[drop-1].epoch
		if err := s.rewriteLogLocked(drop); err != nil {
			return fmt.Errorf("wal: retaining log tail after checkpoint: %w", err)
		}
		s.tailFloor = newFloor
	}
	s.checkpoints.Add(1)
	s.notifyLocked()
	return nil
}

// rewriteLogLocked drops the oldest drop records by writing magic + the
// surviving tail to a temp file and renaming it over the log, then swaps
// the append handle onto the new inode. A crash mid-rewrite leaves the old
// log intact; a rename that lands is complete. If the new file cannot be
// reopened the store wedges (the old handle points at an unlinked inode —
// appending there would silently lose durability).
func (s *Store) rewriteLogLocked(drop int) error {
	cut := s.recs[drop-1].end
	logPath := filepath.Join(s.dir, logName)
	data, err := os.ReadFile(logPath)
	if err != nil {
		return err
	}
	if int64(len(data)) < s.size {
		return fmt.Errorf("log shorter than tracked size: %d < %d", len(data), s.size)
	}
	tmp := logPath + ".tmp"
	tf, err := os.Create(tmp)
	if err != nil {
		return err
	}
	_, werr := tf.Write(logMagic[:])
	if werr == nil {
		_, werr = tf.Write(data[cut:s.size])
	}
	if werr == nil {
		werr = tf.Sync()
	}
	if cerr := tf.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, logPath)
	}
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	syncDir(s.dir)
	nf, err := s.opts.openFile(logPath)
	if err != nil {
		s.broken = err
		return err
	}
	s.f.Close()
	s.f = nf
	shift := cut - int64(len(logMagic))
	s.size -= shift
	kept := s.recs[drop:]
	for i := range kept {
		kept[i].end -= shift
	}
	s.recs = append(s.recs[:0], kept...)
	return nil
}

// Reset makes an externally shipped snapshot the store's entire durable
// state: the snapshot is written (temp, fsync, rename), the log is cleared
// completely — retention does not apply, because any logged record belongs
// to a history the snapshot replaces — and the durable epoch becomes
// exactly epoch. Followers adopting a primary's snapshot use it; the
// primary's own compactions go through Checkpoint.
func (s *Store) Reset(g *graph.Graph, epoch uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ready {
		return ErrNotRecovered
	}
	if err := s.writeSnapshotLocked(g, epoch); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	s.snapEpoch = epoch
	s.lastEpoch = epoch
	s.base = g
	s.tailFloor = epoch
	if err := s.f.Truncate(int64(len(logMagic))); err != nil {
		return fmt.Errorf("wal: truncating log after reset: %w", err)
	}
	s.size = int64(len(logMagic))
	s.recs = s.recs[:0]
	s.broken = nil
	s.checkpoints.Add(1)
	s.notifyLocked()
	return nil
}

// writeSnapshotLocked writes g at epoch as the store's snapshot via
// temp + fsync + rename + directory sync.
func (s *Store) writeSnapshotLocked(g *graph.Graph, epoch uint64) error {
	tmp := filepath.Join(s.dir, snapshotName+".tmp")
	if err := writeSnapshotFile(tmp, g, epoch); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotName)); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(s.dir)
	return nil
}

// Close releases the log file handle. The store must not be used after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ready = false
	s.notifyLocked() // feed long-polls re-check ready and bail
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// StoreStats is a point-in-time snapshot of the store's counters.
type StoreStats struct {
	Dir             string
	Sync            SyncPolicy
	RetainEpochs    int    // configured checkpoint retention window
	RecordsAppended uint64 // batches made durable since Open
	Syncs           uint64 // fsyncs issued for appends
	RecordsReplayed uint64 // records replayed by Recover
	Checkpoints     uint64 // snapshots written since Open
	Truncations     uint64 // torn-tail and failed-append truncations
	SnapshotEpoch   uint64 // epoch of the current snapshot (0: none)
	LastEpoch       uint64 // highest epoch made durable
	TailFloor       uint64 // feed resume boundary: records > this are in the log
	LogBytes        int64  // current log size, magic included
	FeedRequests    uint64 // replication feed chunks served
	FeedSnapshots   uint64 // feed chunks that shipped a full snapshot
	FeedRecords     uint64 // log records served through the feed
}

// Stats returns the store's counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Dir:             s.dir,
		Sync:            s.opts.Sync,
		RetainEpochs:    s.opts.RetainEpochs,
		RecordsAppended: s.appended.Load(),
		Syncs:           s.syncs.Load(),
		RecordsReplayed: s.replayed.Load(),
		Checkpoints:     s.checkpoints.Load(),
		Truncations:     s.truncations.Load(),
		SnapshotEpoch:   s.snapEpoch,
		LastEpoch:       s.lastEpoch,
		TailFloor:       s.tailFloor,
		LogBytes:        s.size,
		FeedRequests:    s.feedRequests.Load(),
		FeedSnapshots:   s.feedSnapshots.Load(),
		FeedRecords:     s.feedRecords.Load(),
	}
}

// Snapshot format: "KRS1" | uint64 LE epoch | uint32 LE crc32 of the epoch
// bytes | a complete KRG1 stream (graph.WriteBinary, self-checking). The
// graph serialization — and its fuzz-hardened reader — is reused wholesale;
// the header only pins which epoch the compacted image corresponds to.

var snapMagic = [4]byte{'K', 'R', 'S', '1'}

const snapHeaderSize = 16

// ErrBadSnapshot reports a corrupt or foreign snapshot file.
var ErrBadSnapshot = errors.New("wal: bad snapshot")

// AppendSnapshot appends the snapshot encoding of g at epoch to buf.
func AppendSnapshot(buf []byte, g *graph.Graph, epoch uint64) []byte {
	var hdr [snapHeaderSize]byte
	copy(hdr[:4], snapMagic[:])
	binary.LittleEndian.PutUint64(hdr[4:12], epoch)
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.ChecksumIEEE(hdr[4:12]))
	buf = append(buf, hdr[:]...)
	var payload bytes.Buffer
	graph.WriteBinary(&payload, g) //nolint:errcheck // bytes.Buffer cannot fail
	return append(buf, payload.Bytes()...)
}

// DecodeSnapshot decodes a snapshot image into its graph and epoch.
func DecodeSnapshot(data []byte) (*graph.Graph, uint64, error) {
	if len(data) < snapHeaderSize {
		return nil, 0, fmt.Errorf("%w: truncated header", ErrBadSnapshot)
	}
	if [4]byte(data[:4]) != snapMagic {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	if crc32.ChecksumIEEE(data[4:12]) != binary.LittleEndian.Uint32(data[12:16]) {
		return nil, 0, fmt.Errorf("%w: header checksum mismatch", ErrBadSnapshot)
	}
	epoch := binary.LittleEndian.Uint64(data[4:12])
	g, err := graph.ReadBinary(bytes.NewReader(data[snapHeaderSize:]))
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return g, epoch, nil
}

func writeSnapshotFile(path string, g *graph.Graph, epoch uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if _, err := w.Write(AppendSnapshot(nil, g, epoch)); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable. Best-effort: not every platform or filesystem supports it.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync() //nolint:errcheck // advisory
	d.Close()
}
