package wal_test

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"kreach/internal/dynamic"
	"kreach/internal/graph"
	"kreach/internal/testgraph"
	"kreach/internal/wal"
	"kreach/internal/wal/waltest"
)

var dopts = dynamic.Options{K: 3}

func edge(s, t int) graph.Edge {
	return graph.Edge{Src: graph.Vertex(s), Dst: graph.Vertex(t)}
}

// openRecover opens a store over dir and recovers an index from base.
func openRecover(t *testing.T, dir string, base *graph.Graph, opts wal.Options) (*wal.Store, *dynamic.Index, wal.RecoveryStats) {
	t.Helper()
	st, err := wal.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	ix, _, rs, err := st.Recover(base, dopts)
	if err != nil {
		t.Fatal(err)
	}
	return st, ix, rs
}

func TestLogRoundTrip(t *testing.T) {
	recs := []wal.Record{
		{Epoch: 7, Add: []graph.Edge{edge(0, 1), edge(2, 3)}},
		{Epoch: 9, Remove: []graph.Edge{edge(0, 1)}},
		{Epoch: 12, Add: []graph.Edge{edge(4, 5)}, Remove: []graph.Edge{edge(2, 3)}},
		{Epoch: 13}, // journaled batch that turned out to be a no-op
	}
	data := wal.AppendLog(nil, recs)
	got, valid, err := wal.DecodeLog(data)
	if err != nil {
		t.Fatalf("DecodeLog: %v", err)
	}
	if valid != len(data) {
		t.Errorf("valid prefix %d, want %d", valid, len(data))
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i, rec := range got {
		want := recs[i]
		if rec.Epoch != want.Epoch ||
			len(rec.Add) != len(want.Add) || len(rec.Remove) != len(want.Remove) {
			t.Errorf("record %d: got %+v want %+v", i, rec, want)
		}
		for j := range want.Add {
			if rec.Add[j] != want.Add[j] {
				t.Errorf("record %d add %d: got %v want %v", i, j, rec.Add[j], want.Add[j])
			}
		}
		for j := range want.Remove {
			if rec.Remove[j] != want.Remove[j] {
				t.Errorf("record %d remove %d: got %v want %v", i, j, rec.Remove[j], want.Remove[j])
			}
		}
	}
}

// frame wraps a raw payload in a length+CRC header, bypassing the encoder
// so tests can frame hostile payloads that AppendLog would never produce.
func frame(payload []byte) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	return append(hdr[:], payload...)
}

func TestDecodeLogHostile(t *testing.T) {
	magic := wal.AppendLog(nil, nil)
	oneRec := wal.AppendLog(nil, []wal.Record{{Epoch: 5, Add: []graph.Edge{edge(1, 2)}}})

	// Payload with a declared edge count far beyond its bytes.
	hugeCount := binary.AppendUvarint(nil, 5) // epoch
	hugeCount = binary.AppendUvarint(hugeCount, 1<<40)
	// Payload with trailing garbage after a valid record body.
	trailing := binary.AppendUvarint(nil, 5)
	trailing = binary.AppendUvarint(trailing, 0) // no adds
	trailing = binary.AppendUvarint(trailing, 0) // no removes
	trailing = append(trailing, 0xAB)
	// Payload with an out-of-range vertex id.
	bigVertex := binary.AppendUvarint(nil, 5)
	bigVertex = binary.AppendUvarint(bigVertex, 1)
	bigVertex = binary.AppendUvarint(bigVertex, 1<<40)
	bigVertex = binary.AppendUvarint(bigVertex, 2)
	bigVertex = binary.AppendUvarint(bigVertex, 0)

	badCRC := append([]byte(nil), oneRec...)
	badCRC[len(badCRC)-1] ^= 0xFF

	hugeLen := append(append([]byte(nil), magic...), 0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0)

	cases := []struct {
		name    string
		data    []byte
		wantErr error
		records int
		valid   int
	}{
		{"empty file", nil, nil, 0, 0},
		{"magic only", magic, nil, 0, 4},
		{"partial magic", magic[:2], wal.ErrTornTail, 0, 0},
		{"foreign magic", []byte("KRG1rest"), wal.ErrBadMagic, 0, 0},
		{"one record", oneRec, nil, 1, len(oneRec)},
		{"torn header", oneRec[:len(magic)+3], wal.ErrTornTail, 0, 4},
		{"torn payload", oneRec[:len(oneRec)-2], wal.ErrTornTail, 0, 4},
		{"crc flip", badCRC, wal.ErrBadRecord, 0, 4},
		{"implausible length", hugeLen, wal.ErrBadRecord, 0, 4},
		{"huge edge count", append(append([]byte(nil), magic...), frame(hugeCount)...), wal.ErrBadRecord, 0, 4},
		{"trailing payload bytes", append(append([]byte(nil), magic...), frame(trailing)...), wal.ErrBadRecord, 0, 4},
		{"vertex out of range", append(append([]byte(nil), magic...), frame(bigVertex)...), wal.ErrBadRecord, 0, 4},
		{"valid then torn", append(append([]byte(nil), oneRec...), 0x01, 0x02), wal.ErrTornTail, 1, len(oneRec)},
	}
	for _, tc := range cases {
		recs, valid, err := wal.DecodeLog(tc.data)
		if !errors.Is(err, tc.wantErr) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.wantErr)
		}
		if len(recs) != tc.records || valid != tc.valid {
			t.Errorf("%s: got %d records / %d valid, want %d / %d",
				tc.name, len(recs), valid, tc.records, tc.valid)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	g := testgraph.Random(20, 40, 3)
	data := wal.AppendSnapshot(nil, g, 42)
	got, epoch, err := wal.DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 42 {
		t.Errorf("epoch %d, want 42", epoch)
	}
	if got.NumVertices() != g.NumVertices() || got.NumEdges() != g.NumEdges() {
		t.Errorf("graph %d/%d, want %d/%d",
			got.NumVertices(), got.NumEdges(), g.NumVertices(), g.NumEdges())
	}

	for _, tc := range []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"truncated header", func(b []byte) []byte { return b[:10] }},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }},
		{"epoch bit flip", func(b []byte) []byte { b[6] ^= 0x10; return b }},
		{"crc flip", func(b []byte) []byte { b[13] ^= 0x01; return b }},
		{"torn graph payload", func(b []byte) []byte { return b[:len(b)-3] }},
	} {
		bad := tc.mut(append([]byte(nil), data...))
		if _, _, err := wal.DecodeSnapshot(bad); err == nil {
			t.Errorf("%s: corrupt snapshot accepted", tc.name)
		}
	}
}

// TestRecoverRoundTrip is the basic durability contract: mutate, drop the
// process state, recover, and see the same edge set and the same epoch.
func TestRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	base := testgraph.Path(6) // 0→1→…→5
	st, ix, rs := openRecover(t, dir, base, wal.Options{})
	if rs.SnapshotEpoch != 0 || rs.Replayed != 0 || rs.TornTail {
		t.Fatalf("virgin recovery stats %+v", rs)
	}
	if ix.Reach(0, 5, nil) {
		t.Fatal("0→5 within 3 hops of a 6-path?")
	}
	if _, err := ix.Mutate([]graph.Edge{edge(0, 4)}, nil); err != nil {
		t.Fatal(err)
	}
	res, err := ix.Mutate([]graph.Edge{edge(5, 0)}, []graph.Edge{edge(0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if !ix.Reach(0, 5, nil) || ix.Reach(0, 2, nil) {
		t.Fatal("pre-crash answers wrong")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, ix2, rs2 := openRecover(t, dir, base, wal.Options{})
	defer st2.Close()
	if rs2.Replayed != 2 || rs2.TornTail {
		t.Errorf("recovery stats %+v, want 2 replayed, no torn tail", rs2)
	}
	if ix2.Epoch() != res.Epoch {
		t.Errorf("recovered epoch %d, want pre-crash %d", ix2.Epoch(), res.Epoch)
	}
	if !ix2.Reach(0, 5, nil) || ix2.Reach(0, 2, nil) || !ix2.Reach(5, 4, nil) {
		t.Error("recovered answers diverge from pre-crash state")
	}
	if err := ix2.CheckInvariants(); err != nil {
		t.Error(err)
	}
	// Post-recovery mutations must journal and take strictly newer epochs.
	res3, err := ix2.Mutate([]graph.Edge{edge(2, 0)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Epoch <= res.Epoch {
		t.Errorf("post-recovery epoch %d not above recovered %d", res3.Epoch, res.Epoch)
	}
}

func TestTornTailTruncatedOnRecovery(t *testing.T) {
	dir := t.TempDir()
	base := testgraph.Path(5)
	st, ix, _ := openRecover(t, dir, base, wal.Options{})
	res1, err := ix.Mutate([]graph.Edge{edge(0, 3)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	intact := st.Stats().LogBytes
	if _, err := ix.Mutate([]graph.Edge{edge(4, 0)}, nil); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Crash mid-append of the second record: chop 3 bytes off the tail.
	logPath := filepath.Join(dir, "wal.log")
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(logPath, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	st2, ix2, rs := openRecover(t, dir, base, wal.Options{})
	defer st2.Close()
	if !rs.TornTail || rs.Replayed != 1 {
		t.Errorf("recovery stats %+v, want torn tail and 1 replayed", rs)
	}
	if ix2.Epoch() != res1.Epoch {
		t.Errorf("recovered epoch %d, want %d (second record was torn)", ix2.Epoch(), res1.Epoch)
	}
	if !ix2.Reach(0, 3, nil) || ix2.Reach(4, 0, nil) {
		t.Error("recovered state should hold batch 1 only")
	}
	if got, err := os.ReadFile(logPath); err != nil || int64(len(got)) != intact {
		t.Errorf("log not truncated at last valid record: %d bytes, want %d (err %v)", len(got), intact, err)
	}
}

func TestCheckpointAndSnapshotRecovery(t *testing.T) {
	dir := t.TempDir()
	base := testgraph.Path(5)
	st, ix, _ := openRecover(t, dir, base, wal.Options{})
	if _, err := ix.Mutate([]graph.Edge{edge(0, 3), edge(3, 0)}, nil); err != nil {
		t.Fatal(err)
	}
	next, err := ix.Compact(nil)
	if err != nil {
		t.Fatal(err)
	}
	snapEpoch := next.Epoch() // before the next batch moves it
	stats := st.Stats()
	if stats.Checkpoints != 1 || stats.SnapshotEpoch != snapEpoch {
		t.Fatalf("after compaction: %+v, want 1 checkpoint at epoch %d", stats, snapEpoch)
	}
	if stats.LogBytes != 4 {
		t.Errorf("log not truncated to magic after checkpoint: %d bytes", stats.LogBytes)
	}
	// One more batch on top of the snapshot.
	res, err := next.Mutate([]graph.Edge{edge(4, 1)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, ix2, rs := openRecover(t, dir, base, wal.Options{})
	defer st2.Close()
	if rs.SnapshotEpoch != snapEpoch || rs.Replayed != 1 {
		t.Errorf("recovery stats %+v, want snapshot epoch %d and 1 replayed", rs, snapEpoch)
	}
	if ix2.Epoch() != res.Epoch {
		t.Errorf("recovered epoch %d, want %d", ix2.Epoch(), res.Epoch)
	}
	if !ix2.Reach(0, 3, nil) || !ix2.Reach(3, 0, nil) || !ix2.Reach(4, 1, nil) {
		t.Error("recovered state lost a batch across the checkpoint")
	}

	// Snapshot-only recovery (empty log): the epoch must be the snapshot's,
	// via RestoreEpoch — no replayed record adopts one.
	st2.Close()
	if err := os.WriteFile(filepath.Join(dir, "wal.log"), wal.AppendLog(nil, nil), 0o644); err != nil {
		t.Fatal(err)
	}
	st3, ix3, rs3 := openRecover(t, dir, base, wal.Options{})
	defer st3.Close()
	if rs3.Replayed != 0 {
		t.Errorf("replayed %d from an empty log", rs3.Replayed)
	}
	if ix3.Epoch() != snapEpoch {
		t.Errorf("snapshot-only recovery epoch %d, want snapshot's %d", ix3.Epoch(), snapEpoch)
	}
}

// TestRecoverySkipsPreSnapshotRecords models a crash between the snapshot
// rename and the log truncation inside Checkpoint: the log still holds
// records already folded into the snapshot, which replay must skip or the
// recovered state double-applies them.
func TestRecoverySkipsPreSnapshotRecords(t *testing.T) {
	dir := t.TempDir()
	base := testgraph.Path(5)
	// Snapshot at epoch 100 = base + (0→3); log still holds the epoch-90
	// record that produced it, plus a newer epoch-110 record.
	snapG := graph.FromEdges(5, append(base.Edges(), edge(0, 3)))
	if err := os.WriteFile(filepath.Join(dir, "snapshot.krs"),
		wal.AppendSnapshot(nil, snapG, 100), 0o644); err != nil {
		t.Fatal(err)
	}
	log := wal.AppendLog(nil, []wal.Record{
		{Epoch: 90, Add: []graph.Edge{edge(0, 3)}},
		{Epoch: 110, Add: []graph.Edge{edge(4, 0)}},
	})
	if err := os.WriteFile(filepath.Join(dir, "wal.log"), log, 0o644); err != nil {
		t.Fatal(err)
	}

	st, ix, rs := openRecover(t, dir, base, wal.Options{})
	defer st.Close()
	if rs.SnapshotEpoch != 100 || rs.Replayed != 1 {
		t.Errorf("recovery stats %+v, want snapshot 100 and exactly 1 replayed", rs)
	}
	if ix.Epoch() != 110 {
		t.Errorf("recovered epoch %d, want 110", ix.Epoch())
	}
	// The epoch-90 record must not double-apply: (0,3) is a DupAdd if
	// retried, which would corrupt nothing here — but a remove in its place
	// would. Assert via state: both edges live, invariants hold.
	if !ix.Reach(0, 3, nil) || !ix.Reach(4, 0, nil) {
		t.Error("recovered state wrong")
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRecoverRefusesForeignLog(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal.log"), []byte("not a wal file"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := st.Recover(testgraph.Path(3), dopts); !errors.Is(err, wal.ErrBadMagic) {
		t.Fatalf("foreign log recovered: err = %v", err)
	}
}

func TestRecoverRejectsMismatchedSnapshot(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "snapshot.krs"),
		wal.AppendSnapshot(nil, testgraph.Path(9), 5), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := st.Recover(testgraph.Path(3), dopts); err == nil {
		t.Fatal("snapshot with wrong vertex count accepted")
	}
}

// failOpen returns an Options whose log file fails per the returned
// pointer's fields; the pointer is live — tests adjust budgets mid-run.
func failOpen(opts wal.Options, ff *waltest.FailFile) wal.Options {
	opts.OpenFile = func(path string) (wal.File, error) {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
		if err != nil {
			return nil, err
		}
		ff.Inner = f
		return ff, nil
	}
	return opts
}

func TestFailedAppendRollsBack(t *testing.T) {
	dir := t.TempDir()
	base := testgraph.Path(5)
	ff := &waltest.FailFile{Remaining: 1 << 20}
	st, ix, _ := openRecover(t, dir, base, failOpen(wal.Options{}, ff))
	if _, err := ix.Mutate([]graph.Edge{edge(0, 3)}, nil); err != nil {
		t.Fatal(err)
	}
	good := st.Stats().LogBytes

	// The next record dies 5 bytes in; the store must truncate the torn
	// prefix away and refuse the mutation with the index unchanged.
	ff.Remaining = 5
	pre := ix.Epoch()
	if _, err := ix.Mutate([]graph.Edge{edge(4, 0)}, nil); !errors.Is(err, waltest.ErrInjected) {
		t.Fatalf("mutation survived a dead log: err = %v", err)
	}
	if ix.Epoch() != pre || ix.Reach(4, 0, nil) {
		t.Error("failed append leaked into the index")
	}
	if got := st.Stats().LogBytes; got != good {
		t.Errorf("log at %d bytes after rollback, want %d", got, good)
	}
	st.Close()

	// On-disk truth: only the acknowledged record.
	st2, ix2, rs := openRecover(t, dir, base, wal.Options{})
	defer st2.Close()
	if rs.Replayed != 1 || rs.TornTail {
		t.Errorf("recovery stats %+v, want exactly the acknowledged record", rs)
	}
	if !ix2.Reach(0, 3, nil) || ix2.Reach(4, 0, nil) {
		t.Error("recovered state diverges from acknowledged history")
	}
}

func TestFailedSyncRollsBack(t *testing.T) {
	dir := t.TempDir()
	base := testgraph.Path(5)
	ff := &waltest.FailFile{Remaining: 1 << 20}
	st, ix, _ := openRecover(t, dir, base, failOpen(wal.Options{Sync: wal.SyncAlways}, ff))
	defer st.Close()
	good := st.Stats().LogBytes
	ff.FailSync = true
	if _, err := ix.Mutate([]graph.Edge{edge(4, 0)}, nil); !errors.Is(err, waltest.ErrInjected) {
		t.Fatalf("mutation acknowledged without a durable record: err = %v", err)
	}
	if got := st.Stats().LogBytes; got != good {
		t.Errorf("unsynced record kept: log at %d bytes, want %d", got, good)
	}
	if ix.Reach(4, 0, nil) {
		t.Error("unsynced mutation applied")
	}
}

func TestWedgedStoreFailsFast(t *testing.T) {
	dir := t.TempDir()
	base := testgraph.Path(5)
	ff := &waltest.FailFile{Remaining: 1 << 20}
	st, ix, _ := openRecover(t, dir, base, failOpen(wal.Options{}, ff))
	if _, err := ix.Mutate([]graph.Edge{edge(0, 3)}, nil); err != nil {
		t.Fatal(err)
	}
	// Append dies mid-record AND the repair truncate fails: the store must
	// wedge — a torn record sits mid-file, so accepting more appends would
	// write records recovery can never reach.
	ff.Remaining, ff.FailTruncate = 5, true
	if _, err := ix.Mutate([]graph.Edge{edge(4, 0)}, nil); !errors.Is(err, waltest.ErrInjected) {
		t.Fatalf("want injected fault, got %v", err)
	}
	ff.Remaining = 1 << 20 // budget restored, but the wedge must hold
	if _, err := ix.Mutate([]graph.Edge{edge(4, 1)}, nil); err == nil {
		t.Fatal("wedged store accepted an append")
	}
	if ix.Reach(4, 0, nil) || ix.Reach(4, 1, nil) {
		t.Error("refused mutations leaked into the index")
	}
	st.Close()

	// Recovery heals the wedge: the torn record is truncated away and the
	// acknowledged prefix survives.
	st2, ix2, rs := openRecover(t, dir, base, wal.Options{})
	defer st2.Close()
	if !rs.TornTail || rs.Replayed != 1 {
		t.Errorf("recovery stats %+v, want torn tail over 1 good record", rs)
	}
	if !ix2.Reach(0, 3, nil) || ix2.Reach(4, 0, nil) {
		t.Error("recovered state diverges from acknowledged history")
	}
}

func TestSyncPolicyCounters(t *testing.T) {
	for _, tc := range []struct {
		policy    wal.SyncPolicy
		wantSyncs uint64
	}{
		{wal.SyncAlways, 2},
		{wal.SyncNever, 0},
	} {
		dir := t.TempDir()
		st, ix, _ := openRecover(t, dir, testgraph.Path(5), wal.Options{Sync: tc.policy})
		if _, err := ix.Mutate([]graph.Edge{edge(0, 3)}, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := ix.Mutate([]graph.Edge{edge(4, 0)}, nil); err != nil {
			t.Fatal(err)
		}
		stats := st.Stats()
		if stats.RecordsAppended != 2 || stats.Syncs != tc.wantSyncs {
			t.Errorf("%v: appended %d syncs %d, want 2/%d",
				tc.policy, stats.RecordsAppended, stats.Syncs, tc.wantSyncs)
		}
		st.Close()
	}
}

func TestAppendBeforeRecoverRefused(t *testing.T) {
	st, err := wal.Open(t.TempDir(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(1, []graph.Edge{edge(0, 1)}, nil); !errors.Is(err, wal.ErrNotRecovered) {
		t.Fatalf("append before recover: err = %v", err)
	}
	if err := st.Checkpoint(testgraph.Path(3), 1); !errors.Is(err, wal.ErrNotRecovered) {
		t.Fatalf("checkpoint before recover: err = %v", err)
	}
}

// TestNoOpBatchKeepsEpochAcrossRecovery pins the subtle epoch contract: a
// journaled batch that applies nothing (all duplicates) must leave both
// the live epoch and the recovered epoch at the last applied batch's.
func TestNoOpBatchKeepsEpochAcrossRecovery(t *testing.T) {
	dir := t.TempDir()
	base := testgraph.Path(5)
	st, ix, _ := openRecover(t, dir, base, wal.Options{})
	res, err := ix.Mutate([]graph.Edge{edge(0, 3)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	noop, err := ix.Mutate([]graph.Edge{edge(0, 3)}, nil) // duplicate: no-op
	if err != nil {
		t.Fatal(err)
	}
	if noop.Applied() || noop.Epoch != res.Epoch {
		t.Fatalf("no-op batch moved the epoch: %+v after %+v", noop, res)
	}
	st.Close()

	st2, ix2, rs := openRecover(t, dir, base, wal.Options{})
	defer st2.Close()
	if rs.Replayed != 2 {
		t.Errorf("replayed %d, want both records (no-op included)", rs.Replayed)
	}
	if ix2.Epoch() != res.Epoch {
		t.Errorf("recovered epoch %d, want %d (no-op record must not adopt)", ix2.Epoch(), res.Epoch)
	}
}
