// Package waltest provides fault-injection primitives for exercising the
// wal package's crash paths: a wrapper around wal.File that dies after a
// byte budget, refuses syncs, or refuses truncates, so tests can drive the
// store into every failure branch — torn appends, unsyncable logs, wedged
// repairs — without a real disk fault.
package waltest

import (
	"errors"

	"kreach/internal/wal"
)

// ErrInjected is the error every injected fault returns; tests assert on
// it (via errors.Is through the store's wrapping) to distinguish injected
// faults from real ones.
var ErrInjected = errors.New("waltest: injected fault")

// FailFile wraps a wal.File and injects faults. The zero budget semantics
// model a crash: a Write that would exceed Remaining persists only the
// prefix that fits — exactly what a process killed mid-write leaves on
// disk — and returns ErrInjected.
type FailFile struct {
	Inner wal.File
	// Remaining is the write budget in bytes. Writes drain it; a write
	// that would overdraw it persists only the affordable prefix and
	// fails. Set it to a huge value for files that only fail elsewhere.
	Remaining int
	// FailSync makes Sync fail without flushing.
	FailSync bool
	// FailTruncate makes Truncate fail, which wedges the store's
	// failed-append repair path.
	FailTruncate bool
}

// Write persists as much of p as the budget affords, then fails.
func (f *FailFile) Write(p []byte) (int, error) {
	if len(p) <= f.Remaining {
		n, err := f.Inner.Write(p)
		f.Remaining -= n
		return n, err
	}
	n, err := f.Inner.Write(p[:f.Remaining])
	f.Remaining -= n
	if err != nil {
		return n, err
	}
	return n, ErrInjected
}

func (f *FailFile) Sync() error {
	if f.FailSync {
		return ErrInjected
	}
	return f.Inner.Sync()
}

func (f *FailFile) Truncate(size int64) error {
	if f.FailTruncate {
		return ErrInjected
	}
	return f.Inner.Truncate(size)
}

func (f *FailFile) Close() error { return f.Inner.Close() }
