package workload

import (
	"math/rand/v2"

	"kreach/internal/graph"
)

// This file generates mixed read/write workloads for the dynamic layer: an
// interleaved stream of queries, edge insertions and edge deletions over
// an evolving edge set. The stream tracks its own copy of the live edges,
// which makes it double as an independent BFS oracle — the bench harness
// cross-checks every sampled index answer against MutationStream.Reach.

// OpKind labels one operation of a mutation stream.
type OpKind int

const (
	// OpQuery is a reachability query (U → V within the workload's k).
	OpQuery OpKind = iota
	// OpAdd inserts the directed edge (U, V).
	OpAdd
	// OpRemove deletes the directed edge (U, V).
	OpRemove
)

func (k OpKind) String() string {
	switch k {
	case OpQuery:
		return "query"
	case OpAdd:
		return "add"
	case OpRemove:
		return "remove"
	}
	return "?"
}

// Op is one operation of the stream.
type Op struct {
	Kind OpKind
	U, V graph.Vertex
}

// MutationMix sets the relative frequency of the three operation kinds;
// the values need not sum to 1, only their ratio matters.
type MutationMix struct {
	Query, Add, Remove float64
}

// DefaultMutationMix is a read-heavy serving profile: ~90% queries with
// writes split evenly between insertions and deletions.
var DefaultMutationMix = MutationMix{Query: 0.9, Add: 0.05, Remove: 0.05}

// MutationStream produces a deterministic interleaved op stream over an
// evolving edge set seeded from a graph. Adds sample fresh non-self edges,
// removes sample uniformly among live edges; both keep the stream's
// internal edge set in lockstep, so the caller only has to apply each op
// to the system under test. Not safe for concurrent use.
type MutationStream struct {
	rng   *rand.Rand
	n     int
	mix   MutationMix
	out   map[graph.Vertex]map[graph.Vertex]bool
	edges []graph.Edge
	pos   map[graph.Edge]int

	// oracle BFS scratch
	seen  []uint32
	epoch uint32
	queue []graph.Vertex
	dist  []int32
}

// NewMutationStream seeds a stream with g's edges. mix zeroes fall back to
// DefaultMutationMix.
func NewMutationStream(g *graph.Graph, seed uint64, mix MutationMix) *MutationStream {
	if mix.Query <= 0 && mix.Add <= 0 && mix.Remove <= 0 {
		mix = DefaultMutationMix
	}
	n := g.NumVertices()
	m := &MutationStream{
		rng:   rand.New(rand.NewPCG(seed, 0x3d1f7)),
		n:     n,
		mix:   mix,
		out:   make(map[graph.Vertex]map[graph.Vertex]bool, n),
		pos:   make(map[graph.Edge]int, g.NumEdges()),
		seen:  make([]uint32, n),
		dist:  make([]int32, n),
		edges: g.Edges(),
	}
	for i, e := range m.edges {
		m.pos[e] = i
		m.link(e)
	}
	return m
}

func (m *MutationStream) link(e graph.Edge) {
	if m.out[e.Src] == nil {
		m.out[e.Src] = make(map[graph.Vertex]bool)
	}
	m.out[e.Src][e.Dst] = true
}

// NumEdges returns the current live edge count.
func (m *MutationStream) NumEdges() int { return len(m.edges) }

// Edges returns a copy of the current live edge set, in no particular
// order. Conformance harnesses rebuild an oracle graph from it after
// replaying the stream's mutations into a system under test.
func (m *MutationStream) Edges() []graph.Edge {
	return append([]graph.Edge(nil), m.edges...)
}

// Next produces the next operation and (for mutations) applies it to the
// stream's own edge set. An add is always a fresh non-self edge; a remove
// always names a live edge. When the mix asks for an impossible op (remove
// on an empty graph, add on a complete one) the stream degrades it to a
// query, so Next always returns.
func (m *MutationStream) Next() Op {
	total := m.mix.Query + m.mix.Add + m.mix.Remove
	x := m.rng.Float64() * total
	switch {
	case x < m.mix.Add:
		if op, ok := m.nextAdd(); ok {
			return op
		}
	case x < m.mix.Add+m.mix.Remove:
		if op, ok := m.nextRemove(); ok {
			return op
		}
	}
	return Op{Kind: OpQuery,
		U: graph.Vertex(m.rng.IntN(m.n)), V: graph.Vertex(m.rng.IntN(m.n))}
}

func (m *MutationStream) nextAdd() (Op, bool) {
	for attempt := 0; attempt < 32; attempt++ {
		u := graph.Vertex(m.rng.IntN(m.n))
		v := graph.Vertex(m.rng.IntN(m.n))
		if u == v || m.out[u][v] {
			continue
		}
		e := graph.Edge{Src: u, Dst: v}
		m.pos[e] = len(m.edges)
		m.edges = append(m.edges, e)
		m.link(e)
		return Op{Kind: OpAdd, U: u, V: v}, true
	}
	return Op{}, false // graph is (nearly) complete
}

func (m *MutationStream) nextRemove() (Op, bool) {
	if len(m.edges) == 0 {
		return Op{}, false
	}
	i := m.rng.IntN(len(m.edges))
	e := m.edges[i]
	last := len(m.edges) - 1
	m.edges[i] = m.edges[last]
	m.pos[m.edges[i]] = i
	m.edges = m.edges[:last]
	delete(m.pos, e)
	delete(m.out[e.Src], e.Dst)
	return Op{Kind: OpRemove, U: e.Src, V: e.Dst}, true
}

// Reach is the k-bounded BFS oracle over the stream's current edge set
// (k < 0 means unbounded). It is deliberately independent of the overlay
// and CSR implementations it is used to cross-check.
func (m *MutationStream) Reach(s, t graph.Vertex, k int) bool {
	if s == t {
		return true
	}
	if k == 0 {
		return false
	}
	m.epoch++
	if m.epoch == 0 {
		for i := range m.seen {
			m.seen[i] = 0
		}
		m.epoch = 1
	}
	m.queue = m.queue[:0]
	m.queue = append(m.queue, s)
	m.seen[s] = m.epoch
	m.dist[s] = 0
	for head := 0; head < len(m.queue); head++ {
		u := m.queue[head]
		d := m.dist[u]
		if k >= 0 && int(d) >= k {
			break
		}
		for v := range m.out[u] {
			if v == t {
				return true
			}
			if m.seen[v] != m.epoch {
				m.seen[v] = m.epoch
				m.dist[v] = d + 1
				m.queue = append(m.queue, v)
			}
		}
	}
	return false
}
