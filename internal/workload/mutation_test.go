package workload

import (
	"testing"

	"kreach/internal/graph"
)

func chain(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.Vertex(i), graph.Vertex(i+1))
	}
	return b.Build()
}

func TestMutationStreamDeterministic(t *testing.T) {
	g := chain(20)
	a := NewMutationStream(g, 42, DefaultMutationMix)
	b := NewMutationStream(g, 42, DefaultMutationMix)
	for i := 0; i < 2000; i++ {
		if oa, ob := a.Next(), b.Next(); oa != ob {
			t.Fatalf("op %d diverges: %+v vs %+v", i, oa, ob)
		}
	}
	c := NewMutationStream(g, 43, DefaultMutationMix)
	same := true
	for i := 0; i < 100; i++ {
		if a.Next() != c.Next() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestMutationStreamOpsAreValid(t *testing.T) {
	g := chain(30)
	m := NewMutationStream(g, 7, MutationMix{Query: 0.4, Add: 0.3, Remove: 0.3})
	live := make(map[graph.Edge]bool)
	g.ForEachEdge(func(u, v graph.Vertex) { live[graph.Edge{Src: u, Dst: v}] = true })
	counts := map[OpKind]int{}
	for i := 0; i < 5000; i++ {
		op := m.Next()
		counts[op.Kind]++
		e := graph.Edge{Src: op.U, Dst: op.V}
		switch op.Kind {
		case OpAdd:
			if op.U == op.V {
				t.Fatalf("op %d: self-loop add %+v", i, op)
			}
			if live[e] {
				t.Fatalf("op %d: add of live edge %+v", i, op)
			}
			live[e] = true
		case OpRemove:
			if !live[e] {
				t.Fatalf("op %d: remove of dead edge %+v", i, op)
			}
			delete(live, e)
		}
		if op.U < 0 || int(op.U) >= 30 || op.V < 0 || int(op.V) >= 30 {
			t.Fatalf("op %d out of range: %+v", i, op)
		}
	}
	if m.NumEdges() != len(live) {
		t.Errorf("stream edge count %d, shadow copy %d", m.NumEdges(), len(live))
	}
	for _, k := range []OpKind{OpQuery, OpAdd, OpRemove} {
		if counts[k] == 0 {
			t.Errorf("mix produced no %v ops", k)
		}
	}
}

func TestMutationStreamOracle(t *testing.T) {
	g := chain(6) // 0→1→…→5
	m := NewMutationStream(g, 1, MutationMix{Query: 1})
	if !m.Reach(0, 5, 5) || m.Reach(0, 5, 4) {
		t.Error("chain distances wrong")
	}
	if !m.Reach(0, 5, -1) {
		t.Error("unbounded reach failed")
	}
	if m.Reach(5, 0, -1) {
		t.Error("reverse direction reachable")
	}
	if !m.Reach(3, 3, 0) {
		t.Error("s == t must hold at k = 0")
	}
	// Mutations move the oracle: drop 2→3, bridge 1→4.
	ms := NewMutationStream(g, 9, MutationMix{Query: 1})
	ms.removeEdgeForTest(2, 3)
	if ms.Reach(0, 5, -1) {
		t.Error("cut chain still reachable")
	}
	ms.addEdgeForTest(1, 4)
	if !ms.Reach(0, 5, 3) {
		t.Error("0→1→4→5 should be 3 hops")
	}
}

// Test helpers that mutate the stream's edge set directly.
func (m *MutationStream) removeEdgeForTest(u, v graph.Vertex) {
	e := graph.Edge{Src: u, Dst: v}
	i := m.pos[e]
	last := len(m.edges) - 1
	m.edges[i] = m.edges[last]
	m.pos[m.edges[i]] = i
	m.edges = m.edges[:last]
	delete(m.pos, e)
	delete(m.out[u], v)
}

func (m *MutationStream) addEdgeForTest(u, v graph.Vertex) {
	e := graph.Edge{Src: u, Dst: v}
	m.pos[e] = len(m.edges)
	m.edges = append(m.edges, e)
	m.link(e)
}

func TestMutationStreamDegradesGracefully(t *testing.T) {
	// Empty graph: removes degrade to queries; adds still work.
	empty := graph.NewBuilder(3).Build()
	m := NewMutationStream(empty, 5, MutationMix{Remove: 1})
	for i := 0; i < 50; i++ {
		if op := m.Next(); op.Kind != OpQuery {
			t.Fatalf("remove on empty graph produced %+v", op)
		}
	}
	// Complete graph: adds degrade to queries.
	b := graph.NewBuilder(3)
	for u := 0; u < 3; u++ {
		for v := 0; v < 3; v++ {
			if u != v {
				b.AddEdge(graph.Vertex(u), graph.Vertex(v))
			}
		}
	}
	m = NewMutationStream(b.Build(), 5, MutationMix{Add: 1})
	for i := 0; i < 50; i++ {
		if op := m.Next(); op.Kind != OpQuery {
			t.Fatalf("add on complete graph produced %+v", op)
		}
	}
}
