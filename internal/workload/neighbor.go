package workload

import (
	"math/rand/v2"

	"kreach/internal/core"
	"kreach/internal/graph"
)

// This file generates neighborhood-enumeration workloads: streams of
// "materialize the k-hop ball around v" queries, the set-query counterpart
// of the pairwise streams above. Like MutationStream, the generator
// doubles as its own ground truth: Ball runs an independent bounded BFS
// over the graph, so harnesses and tests can cross-check every index
// answer without trusting any index code.

// NeighborQuery is one enumeration request.
type NeighborQuery struct {
	Src graph.Vertex
	K   int // hop bound; < 0 means unbounded
	Dir graph.Direction
}

// NeighborStream produces a deterministic stream of enumeration queries
// over a fixed graph: sources drawn uniformly (optionally celebrity-biased
// through the top-degree list), hop bounds cycled from a fixed set, and
// directions alternating. Not safe for concurrent use.
type NeighborStream struct {
	rng  *rand.Rand
	g    *graph.Graph
	ks   []int
	top  []graph.Vertex
	bias float64
	i    int

	scratch *graph.BFSScratch
}

// NewNeighborStream seeds a stream over g. ks lists the hop bounds to
// cycle through (empty: {2}); bias in (0,1] makes that fraction of sources
// come from the top-64 degree list, mirroring the Section 4.3 celebrity
// workload (0 disables).
func NewNeighborStream(g *graph.Graph, seed uint64, ks []int, bias float64) *NeighborStream {
	if len(ks) == 0 {
		ks = []int{2}
	}
	s := &NeighborStream{
		rng:     rand.New(rand.NewPCG(seed, 0xba11)),
		g:       g,
		ks:      append([]int(nil), ks...),
		bias:    bias,
		scratch: graph.NewBFSScratch(g.NumVertices()),
	}
	if bias > 0 {
		s.top = TopDegree(g, 64)
	}
	return s
}

// Next produces the next query.
func (s *NeighborStream) Next() NeighborQuery {
	src := graph.Vertex(s.rng.IntN(s.g.NumVertices()))
	if s.bias > 0 && s.rng.Float64() < s.bias {
		src = s.top[s.rng.IntN(len(s.top))]
	}
	q := NeighborQuery{
		Src: src,
		K:   s.ks[s.i%len(s.ks)],
		Dir: graph.Direction(s.i % 2),
	}
	s.i++
	return q
}

// Ball is the BFS-ball oracle: the exact k-hop ball of q (source excluded)
// with Within/Frontier buckets, computed directly on the graph. It shares
// one scratch across calls; results alias nothing.
func (s *NeighborStream) Ball(q NeighborQuery) map[graph.Vertex]core.DistBucket {
	graph.KHopBFS(s.g, q.Src, q.K, q.Dir, s.scratch)
	out := make(map[graph.Vertex]core.DistBucket)
	for _, v := range s.scratch.Visited() {
		if v == q.Src {
			continue
		}
		b := core.BucketWithin
		if q.K >= 0 && int(s.scratch.Dist(v)) == q.K {
			b = core.BucketFrontier
		}
		out[v] = b
	}
	return out
}

// MatchesBall reports whether an index's answer equals the oracle ball of
// q — same membership, same buckets. It is the cross-check harnesses run
// per sampled query.
func (s *NeighborStream) MatchesBall(q NeighborQuery, got []core.Neighbor) bool {
	want := s.Ball(q)
	if len(got) != len(want) {
		return false
	}
	for _, nb := range got {
		if wb, ok := want[nb.V]; !ok || wb != nb.Bucket {
			return false
		}
	}
	return true
}
