package workload

import (
	"testing"

	"kreach/internal/core"
	"kreach/internal/graph"
	"kreach/internal/testgraph"
)

func TestNeighborStreamDeterministic(t *testing.T) {
	g := testgraph.Random(30, 90, 3)
	a := NewNeighborStream(g, 7, []int{2, 3}, 0)
	b := NewNeighborStream(g, 7, []int{2, 3}, 0)
	for i := 0; i < 100; i++ {
		if qa, qb := a.Next(), b.Next(); qa != qb {
			t.Fatalf("query %d diverged: %+v vs %+v", i, qa, qb)
		}
	}
}

func TestNeighborStreamCyclesKAndDir(t *testing.T) {
	g := testgraph.Random(20, 40, 1)
	s := NewNeighborStream(g, 1, []int{2, 5}, 0)
	sawK := map[int]bool{}
	sawDir := map[graph.Direction]bool{}
	for i := 0; i < 10; i++ {
		q := s.Next()
		sawK[q.K] = true
		sawDir[q.Dir] = true
	}
	if !sawK[2] || !sawK[5] || !sawDir[graph.Forward] || !sawDir[graph.Backward] {
		t.Fatalf("stream did not cycle bounds/directions: %v %v", sawK, sawDir)
	}
}

// TestNeighborStreamOracle validates the oracle against a hand-checked
// ball on the paper's Figure 1 graph.
func TestNeighborStreamOracle(t *testing.T) {
	g := testgraph.PaperFigure1()
	s := NewNeighborStream(g, 1, []int{2}, 0)
	ball := s.Ball(NeighborQuery{Src: testgraph.B, K: 2, Dir: graph.Forward})
	want := map[graph.Vertex]core.DistBucket{
		testgraph.D: core.BucketWithin,
		testgraph.E: core.BucketFrontier,
		testgraph.F: core.BucketFrontier,
	}
	if len(ball) != len(want) {
		t.Fatalf("ball %v, want %v", ball, want)
	}
	for v, b := range want {
		if ball[v] != b {
			t.Fatalf("vertex %v bucket %v, want %v", v, ball[v], b)
		}
	}
	got := []core.Neighbor{
		{V: testgraph.D, Bucket: core.BucketWithin},
		{V: testgraph.E, Bucket: core.BucketFrontier},
		{V: testgraph.F, Bucket: core.BucketFrontier},
	}
	if !s.MatchesBall(NeighborQuery{Src: testgraph.B, K: 2, Dir: graph.Forward}, got) {
		t.Fatal("MatchesBall rejected the oracle's own ball")
	}
	got[0].Bucket = core.BucketFrontier
	if s.MatchesBall(NeighborQuery{Src: testgraph.B, K: 2, Dir: graph.Forward}, got) {
		t.Fatal("MatchesBall accepted a wrong bucket")
	}
}

// TestNeighborStreamAgainstIndex sweeps stream queries through a plain
// index and the oracle together.
func TestNeighborStreamAgainstIndex(t *testing.T) {
	g := testgraph.Random(50, 160, 9)
	for _, k := range []int{2, 3} {
		ix, err := core.Build(g, core.Options{K: k, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		s := NewNeighborStream(g, 11, []int{k}, 0.3)
		sc := core.NewEnumScratch()
		for i := 0; i < 200; i++ {
			q := s.Next()
			got, _, err := ix.Enumerate(t.Context(), q.Src, core.EnumOptions{Direction: q.Dir}, sc)
			if err != nil {
				t.Fatal(err)
			}
			if !s.MatchesBall(q, got) {
				t.Fatalf("query %d (%+v): index ball disagrees with oracle", i, q)
			}
		}
	}
}
