// Package workload generates and classifies query workloads. Section 6.2
// of the paper evaluates all indexes on 1 million uniformly random
// (s, t) query pairs; Table 8 then breaks the same workload down by the
// four cases of Algorithm 2, and Section 4.3 motivates a celebrity-biased
// mix where high-degree vertices appear as endpoints more often.
package workload

import (
	"math/rand/v2"
	"sort"

	"kreach/internal/core"
	"kreach/internal/graph"
)

// Queries is a columnar batch of (source, target) query pairs.
type Queries struct {
	S, T []graph.Vertex
}

// Len returns the number of queries.
func (q Queries) Len() int { return len(q.S) }

// Uniform samples count pairs uniformly at random over [0, n)², the
// workload of Tables 5, 7 and 8. Pairs with s = t are permitted, exactly as
// sampling "randomly generated queries" would produce.
func Uniform(n, count int, seed uint64) Queries {
	rng := rand.New(rand.NewPCG(seed, 0x9a1e5))
	q := Queries{S: make([]graph.Vertex, count), T: make([]graph.Vertex, count)}
	for i := 0; i < count; i++ {
		q.S[i] = graph.Vertex(rng.IntN(n))
		q.T[i] = graph.Vertex(rng.IntN(n))
	}
	return q
}

// CelebrityBiased samples pairs where each endpoint independently is, with
// probability bias, one of the top `celebrities` highest-degree vertices of
// g ("statistically these high-degree vertices may indeed have a higher
// probability to be picked as query vertices", Section 4.3).
func CelebrityBiased(g *graph.Graph, count, celebrities int, bias float64, seed uint64) Queries {
	n := g.NumVertices()
	if celebrities > n {
		celebrities = n
	}
	top := TopDegree(g, celebrities)
	rng := rand.New(rand.NewPCG(seed, 0x5e1eb))
	pick := func() graph.Vertex {
		if len(top) > 0 && rng.Float64() < bias {
			return top[rng.IntN(len(top))]
		}
		return graph.Vertex(rng.IntN(n))
	}
	q := Queries{S: make([]graph.Vertex, count), T: make([]graph.Vertex, count)}
	for i := 0; i < count; i++ {
		q.S[i] = pick()
		q.T[i] = pick()
	}
	return q
}

// TopDegree returns the k vertices of largest degree (Deg = |in ∪ out|),
// ties broken by vertex id.
func TopDegree(g *graph.Graph, k int) []graph.Vertex {
	n := g.NumVertices()
	vs := make([]graph.Vertex, n)
	for i := range vs {
		vs[i] = graph.Vertex(i)
	}
	deg := make([]int, n)
	for i := range deg {
		deg[i] = g.Degree(graph.Vertex(i))
	}
	sort.SliceStable(vs, func(i, j int) bool { return deg[vs[i]] > deg[vs[j]] })
	if k > n {
		k = n
	}
	return vs[:k]
}

// CaseMix is the Table 8 breakdown: the fraction of queries falling into
// each case of Algorithm 2 (CaseEqual excluded from the four percentages
// but reported separately).
type CaseMix struct {
	Equal  float64
	Case   [4]float64 // Case1..Case4 fractions
	Counts [5]int     // raw counts: equal, case1..case4
}

// Classify tallies q against the cover membership of ix.
func Classify(ix *core.Index, q Queries) CaseMix {
	var mix CaseMix
	for i := range q.S {
		switch ix.Classify(q.S[i], q.T[i]) {
		case core.CaseEqual:
			mix.Counts[0]++
		case core.Case1:
			mix.Counts[1]++
		case core.Case2:
			mix.Counts[2]++
		case core.Case3:
			mix.Counts[3]++
		case core.Case4:
			mix.Counts[4]++
		}
	}
	total := float64(q.Len())
	if total == 0 {
		return mix
	}
	mix.Equal = float64(mix.Counts[0]) / total
	for c := 0; c < 4; c++ {
		mix.Case[c] = float64(mix.Counts[c+1]) / total
	}
	return mix
}
