package workload_test

import (
	"testing"

	"kreach/internal/core"
	"kreach/internal/graph"
	"kreach/internal/testgraph"
	"kreach/internal/workload"
)

func TestUniformDeterministicAndInRange(t *testing.T) {
	a := workload.Uniform(100, 5000, 7)
	b := workload.Uniform(100, 5000, 7)
	if a.Len() != 5000 {
		t.Fatalf("Len = %d", a.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.S[i] != b.S[i] || a.T[i] != b.T[i] {
			t.Fatal("same seed, different workload")
		}
		if a.S[i] < 0 || int(a.S[i]) >= 100 || a.T[i] < 0 || int(a.T[i]) >= 100 {
			t.Fatal("query vertex out of range")
		}
	}
	c := workload.Uniform(100, 5000, 8)
	same := 0
	for i := 0; i < c.Len(); i++ {
		if a.S[i] == c.S[i] && a.T[i] == c.T[i] {
			same++
		}
	}
	if same == c.Len() {
		t.Error("different seeds produced identical workloads")
	}
}

func TestTopDegree(t *testing.T) {
	g := testgraph.Star(50, true)
	top := workload.TopDegree(g, 3)
	if top[0] != 0 {
		t.Errorf("top degree vertex = %d, want hub 0", top[0])
	}
	if len(top) != 3 {
		t.Errorf("len = %d", len(top))
	}
	if got := workload.TopDegree(g, 1000); len(got) != 50 {
		t.Errorf("k clamp failed: %d", len(got))
	}
}

func TestCelebrityBias(t *testing.T) {
	g := testgraph.Star(1000, true)
	q := workload.CelebrityBiased(g, 10000, 1, 0.5, 3)
	hubHits := 0
	for i := 0; i < q.Len(); i++ {
		if q.S[i] == 0 {
			hubHits++
		}
	}
	// Expect about half the sources to be the hub; uniform would give ~10.
	if hubHits < 3000 {
		t.Errorf("hub sources = %d of 10000, bias not applied", hubHits)
	}
}

func TestClassifyMatchesIndex(t *testing.T) {
	g := testgraph.PaperFigure1()
	ix, err := core.Build(g, core.Options{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := workload.Uniform(g.NumVertices(), 20000, 11)
	mix := workload.Classify(ix, q)
	total := 0
	for _, c := range mix.Counts {
		total += c
	}
	if total != q.Len() {
		t.Fatalf("counts sum %d != %d", total, q.Len())
	}
	sum := mix.Equal
	for _, f := range mix.Case {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("fractions sum to %f", sum)
	}
	// Manual spot check.
	want := map[core.QueryCase]int{}
	for i := 0; i < q.Len(); i++ {
		want[ix.Classify(q.S[i], q.T[i])]++
	}
	if want[core.Case4] != mix.Counts[4] || want[core.Case1] != mix.Counts[1] {
		t.Error("classification counts disagree with direct classification")
	}
}

func TestClassifyEmptyWorkload(t *testing.T) {
	g := testgraph.Path(4)
	ix, err := core.Build(g, core.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	mix := workload.Classify(ix, workload.Queries{})
	if mix.Equal != 0 {
		t.Error("empty workload produced nonzero fractions")
	}
	_ = graph.Vertex(0)
}
