// Package kreach implements the k-reach index of Cheng, Shang, Cheng, Wang
// and Yu, "K-Reach: Who is in Your Small World" (PVLDB 5(11), 2012): an
// index for k-hop reachability queries on directed, unweighted graphs.
//
// A k-hop reachability query asks whether a target vertex t is reachable
// from a source vertex s by a directed path of at most k edges. Classic
// reachability is the special case k = ∞ (use Unbounded). The index is a
// small weighted graph over a vertex cover of the input: every vertex is
// within one hop of the cover, so pre-computing bucketed k-hop distances
// between cover vertices (2 bits per pair) suffices to answer any query
// with at most one adjacency-list intersection.
//
// # Quick start
//
//	b := kreach.NewBuilder(4)
//	b.AddEdge(0, 1)
//	b.AddEdge(1, 2)
//	b.AddEdge(2, 3)
//	g := b.Build()
//	ix, err := kreach.BuildIndex(g, kreach.IndexOptions{K: 2})
//	// ix.Reach(0, 2) == true, ix.Reach(0, 3) == false
//
// Four index variants are provided:
//
//   - Index (BuildIndex): the k-reach index for one fixed k, including
//     k = Unbounded for classic reachability (the paper's n-reach).
//   - HKIndex (BuildHKIndex): the (h,k)-reach variant of Section 5, built
//     on an h-hop vertex cover; smaller index, slower queries.
//   - MultiIndex (BuildMultiIndex): the Section 4.4 ladder of indexes for
//     queries with varying k, either exact (all rungs) or approximate
//     (power-of-two rungs, one-sided error between rungs).
//   - DynamicIndex (NewDynamicIndex): a mutable k-reach index accepting
//     online edge insertions and deletions with incremental maintenance,
//     plus compaction back into a fresh immutable snapshot.
//
// All four variants implement the Reacher interface — the recommended way
// to consume them: one context-aware query contract (ReachK, ReachBatch)
// plus a uniform IndexInfo surface (K, Epoch, CoverSize, SizeBytes, Stats),
// so serving layers and tools work with any variant, current or future,
// through a single code path. The per-variant Reach methods remain as thin
// wrappers for callers that know their concrete type.
//
// All public query methods are safe for concurrent use; construction
// parallelizes across cover vertices (Section 4.1.3 of the paper).
package kreach

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"kreach/internal/core"
	"kreach/internal/cover"
	"kreach/internal/graph"
)

// Unbounded selects classic reachability (k = ∞).
const Unbounded = core.Unbounded

// CoverStrategy selects the vertex-cover heuristic used by BuildIndex.
type CoverStrategy int

const (
	// RandomEdgeCover is the paper's baseline 2-approximation (§4.1.1):
	// repeatedly pick a random uncovered edge and keep both endpoints.
	RandomEdgeCover CoverStrategy = iota
	// DegreePrioritizedCover biases edge selection toward high-degree
	// endpoints (§4.3), pulling "celebrity" vertices into the cover so that
	// their queries hit the cheap Case 1 path. Still 2-approximate.
	DegreePrioritizedCover
	// GreedyCover repeatedly takes the vertex covering the most uncovered
	// edges. Usually the smallest cover in practice; no constant-factor
	// guarantee. Provided for ablations.
	GreedyCover
)

func (s CoverStrategy) internal() cover.Strategy {
	switch s {
	case DegreePrioritizedCover:
		return cover.DegreePrioritized
	case GreedyCover:
		return cover.GreedyVertex
	default:
		return cover.RandomEdge
	}
}

// Graph is an immutable directed, unweighted graph. Build one with Builder,
// LoadEdgeList or LoadBinary.
type Graph struct {
	g *graph.Graph
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.g.NumVertices() }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return g.g.NumEdges() }

// HasEdge reports whether the directed edge (u, v) exists.
func (g *Graph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	return g.g.HasEdge(graph.Vertex(u), graph.Vertex(v))
}

// OutNeighbors returns a copy of u's out-neighbor list.
func (g *Graph) OutNeighbors(u int) []int {
	g.check(u)
	return toInts(g.g.OutNeighbors(graph.Vertex(u)))
}

// InNeighbors returns a copy of u's in-neighbor list.
func (g *Graph) InNeighbors(u int) []int {
	g.check(u)
	return toInts(g.g.InNeighbors(graph.Vertex(u)))
}

// Degree returns |inNei(u) ∪ outNei(u)|, the degree notion of the paper.
func (g *Graph) Degree(u int) int {
	g.check(u)
	return g.g.Degree(graph.Vertex(u))
}

func (g *Graph) check(v int) {
	if v < 0 || v >= g.g.NumVertices() {
		panic(fmt.Sprintf("kreach: vertex %d out of range [0,%d)", v, g.g.NumVertices()))
	}
}

func toInts(vs []graph.Vertex) []int {
	out := make([]int, len(vs))
	for i, v := range vs {
		out[i] = int(v)
	}
	return out
}

// Internal returns the underlying representation; for use by this module's
// command-line tools and benchmarks only.
func (g *Graph) Internal() *graph.Graph { return g.g }

// WrapInternal adopts an internal graph; for use by this module's tools.
func WrapInternal(g *graph.Graph) *Graph { return &Graph{g: g} }

// Builder accumulates directed edges and produces a Graph. Duplicate edges
// are collapsed; self-loops are allowed but irrelevant to reachability.
type Builder struct {
	b *graph.Builder
}

// NewBuilder creates a builder for a graph with n vertices (ids 0..n-1).
func NewBuilder(n int) *Builder { return &Builder{b: graph.NewBuilder(n)} }

// AddEdge records the directed edge (u, v). It panics if an endpoint is out
// of range, mirroring slice indexing semantics.
func (b *Builder) AddEdge(u, v int) {
	b.b.AddEdge(graph.Vertex(u), graph.Vertex(v))
}

// Build produces the immutable graph. The builder remains usable.
func (b *Builder) Build() *Graph { return &Graph{g: b.b.Build()} }

// LoadEdgeList reads a whitespace edge list ("src dst" per line, '#'
// comments, optional "n m" header) from r.
func LoadEdgeList(r io.Reader) (*Graph, error) {
	g, err := graph.ReadEdgeList(r)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// SaveEdgeList writes g as a text edge list with a header line.
func (g *Graph) SaveEdgeList(w io.Writer) error { return graph.WriteEdgeList(w, g.g) }

// LoadBinary reads the compact binary graph format written by SaveBinary.
func LoadBinary(r io.Reader) (*Graph, error) {
	g, err := graph.ReadBinary(r)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// SaveBinary writes g in a compact, checksummed binary form.
func (g *Graph) SaveBinary(w io.Writer) error { return graph.WriteBinary(w, g.g) }

// IndexOptions configures BuildIndex.
type IndexOptions struct {
	// K is the hop bound; Unbounded builds the classic-reachability
	// (n-reach) variant. K = 0 is invalid.
	K int
	// Cover selects the vertex-cover heuristic (default RandomEdgeCover).
	Cover CoverStrategy
	// Seed drives randomized cover selection; fixed seeds give fully
	// deterministic indexes.
	Seed uint64
	// Parallelism bounds concurrent construction BFS workers
	// (0 = GOMAXPROCS, 1 = sequential).
	Parallelism int
}

// Index answers k-hop reachability queries for the fixed k it was built
// with. Queries are safe for concurrent use.
type Index struct {
	ix      *core.Index
	g       *Graph
	scratch sync.Pool
}

// BuildIndex constructs the k-reach index of g (Algorithm 1 of the paper).
func BuildIndex(g *Graph, opts IndexOptions) (*Index, error) {
	ix, err := core.Build(g.g, core.Options{
		K:           opts.K,
		Strategy:    opts.Cover.internal(),
		Seed:        opts.Seed,
		Parallelism: opts.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	return newIndex(ix, g), nil
}

func newIndex(ix *core.Index, g *Graph) *Index {
	idx := &Index{ix: ix, g: g}
	idx.scratch.New = func() any { return core.NewQueryScratch() }
	return idx
}

// Pair is one (S, T) query of a batch. See the ReachBatch methods.
type Pair struct {
	S, T int
}

// checkPairs validates every pair against g and converts to core pairs.
func checkPairs(g *Graph, pairs []Pair) []core.Pair {
	out := make([]core.Pair, len(pairs))
	for i, p := range pairs {
		g.check(p.S)
		g.check(p.T)
		out[i] = core.Pair{S: graph.Vertex(p.S), T: graph.Vertex(p.T)}
	}
	return out
}

// Reach reports whether t is reachable from s within the index's k hops
// (Algorithm 2 of the paper). Safe for concurrent use. It is the
// concrete-type shorthand for ReachK with UseIndexK; new code that may hold
// any Reacher should prefer ReachK.
func (ix *Index) Reach(s, t int) bool {
	ix.g.check(s)
	ix.g.check(t)
	sc := ix.scratch.Get().(*core.QueryScratch)
	ok := ix.ix.Reach(graph.Vertex(s), graph.Vertex(t), sc)
	ix.scratch.Put(sc)
	return ok
}

// ReachBools answers every (S, T) pair at once with a worker pool that
// reuses per-worker query scratch. parallelism bounds the workers
// (0 = GOMAXPROCS, 1 = sequential). The result is positionally aligned
// with pairs. Safe for concurrent use, including concurrently with Reach.
//
// Deprecated: use ReachBatch, which adds context cancellation and the
// uniform BatchVerdict answer shape. ReachBools remains for callers that
// predate the Reacher interface.
func (ix *Index) ReachBools(pairs []Pair, parallelism int) []bool {
	out, _ := ix.ix.ReachBatch(context.Background(), checkPairs(ix.g, pairs), parallelism)
	return out
}

// K returns the hop bound (Unbounded for classic reachability).
func (ix *Index) K() int { return ix.ix.K() }

// Epoch returns the index's process-unique generation number, assigned when
// it was built or loaded. Serving layers use it as a cache epoch: embedding
// the epoch in result-cache keys means swapping in a replacement index
// implicitly invalidates every answer cached against the old one. Epochs
// are never reused within a process and carry no meaning across processes.
func (ix *Index) Epoch() uint64 { return ix.ix.Generation() }

// CoverSize returns |V_I|, the size of the vertex cover.
func (ix *Index) CoverSize() int { return ix.ix.Cover().Len() }

// InCover reports whether vertex v belongs to the index's vertex cover.
func (ix *Index) InCover(v int) bool {
	ix.g.check(v)
	return ix.ix.InCover(graph.Vertex(v))
}

// IndexEdges returns |E_I|, the number of index edges.
func (ix *Index) IndexEdges() int { return ix.ix.NumIndexEdges() }

// SizeBytes estimates the serialized index size (excluding the graph).
func (ix *Index) SizeBytes() int { return ix.ix.SizeBytes() }

// Save serializes the index (without its graph).
func (ix *Index) Save(w io.Writer) error { return ix.ix.WriteBinary(w) }

// LoadIndex reads an index written by Save and attaches it to g, which
// must be the graph it was built from.
func LoadIndex(r io.Reader, g *Graph) (*Index, error) {
	ix, err := core.ReadBinaryIndex(r, g.g)
	if err != nil {
		return nil, err
	}
	return newIndex(ix, g), nil
}

// Internal exposes the underlying index for this module's benchmarks.
func (ix *Index) Internal() *core.Index { return ix.ix }

// HKOptions configures BuildHKIndex. Definition 2 requires K > 2·H.
type HKOptions struct {
	H           int // hop-cover radius (≥ 1)
	K           int // hop bound (> 2H)
	Parallelism int
}

// HKIndex is the (h,k)-reach index of Section 5: built on an h-hop vertex
// cover, it is smaller than the plain index but expands query-time
// neighborhoods to h hops. Queries are safe for concurrent use.
type HKIndex struct {
	ix      *core.HKIndex
	g       *Graph
	scratch sync.Pool
}

// BuildHKIndex constructs the (h,k)-reach index of g.
func BuildHKIndex(g *Graph, opts HKOptions) (*HKIndex, error) {
	ix, err := core.BuildHK(g.g, core.HKOptions{
		H: opts.H, K: opts.K, Parallelism: opts.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	idx := &HKIndex{ix: ix, g: g}
	idx.scratch.New = func() any { return core.NewHKQueryScratch(ix) }
	return idx, nil
}

// Reach reports whether t is reachable from s within k hops (Algorithm 3).
func (ix *HKIndex) Reach(s, t int) bool {
	ix.g.check(s)
	ix.g.check(t)
	sc := ix.scratch.Get().(*core.HKQueryScratch)
	ok := ix.ix.Reach(graph.Vertex(s), graph.Vertex(t), sc)
	ix.scratch.Put(sc)
	return ok
}

// ReachBools answers every (S, T) pair at once with a worker pool; see
// Index.ReachBools. parallelism: 0 = GOMAXPROCS, 1 = sequential.
//
// Deprecated: use ReachBatch (context cancellation, uniform verdicts).
func (ix *HKIndex) ReachBools(pairs []Pair, parallelism int) []bool {
	out, _ := ix.ix.ReachBatch(context.Background(), checkPairs(ix.g, pairs), parallelism)
	return out
}

// H returns the hop-cover radius.
func (ix *HKIndex) H() int { return ix.ix.H() }

// Epoch returns the index's process-unique generation number; see
// Index.Epoch.
func (ix *HKIndex) Epoch() uint64 { return ix.ix.Generation() }

// K returns the hop bound.
func (ix *HKIndex) K() int { return ix.ix.K() }

// CoverSize returns the h-hop vertex cover size.
func (ix *HKIndex) CoverSize() int { return ix.ix.Cover().Len() }

// SizeBytes estimates the serialized index size.
func (ix *HKIndex) SizeBytes() int { return ix.ix.SizeBytes() }

// Save serializes the index (without its graph).
func (ix *HKIndex) Save(w io.Writer) error { return ix.ix.WriteBinary(w) }

// LoadAutoIndex reads an index written by Index.Save or HKIndex.Save,
// detecting the variant by a 4-byte magic peek, and attaches it to g.
// Exactly one of the returned indexes is non-nil on success; a stream with
// neither magic errors without being parsed, and a stream too short to even
// hold a magic reports a truncated index file. Callers that do not need
// the concrete type should prefer LoadAutoReacher.
func LoadAutoIndex(r io.Reader, g *Graph) (*Index, *HKIndex, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, nil, fmt.Errorf("kreach: truncated index file: %d byte(s), need 4 for the magic: %w",
				len(head), io.ErrUnexpectedEOF)
		}
		return nil, nil, fmt.Errorf("kreach: reading index magic: %w", err)
	}
	switch core.SniffIndexMagic([4]byte(head)) {
	case "kreach":
		ix, err := LoadIndex(br, g)
		return ix, nil, err
	case "hkreach":
		hk, err := LoadHKIndex(br, g)
		return nil, hk, err
	}
	return nil, nil, fmt.Errorf("kreach: magic %q is neither a plain nor an (h,k) index", head)
}

// LoadAutoReacher reads an index written by Index.Save or HKIndex.Save —
// detecting the variant from its magic like LoadAutoIndex — and returns it
// behind the unified Reacher interface, so loaders need no per-variant
// plumbing.
func LoadAutoReacher(r io.Reader, g *Graph) (Reacher, error) {
	ix, hk, err := LoadAutoIndex(r, g)
	if err != nil {
		return nil, err
	}
	if ix != nil {
		return ix, nil
	}
	return hk, nil
}

// LoadHKIndex reads an index written by HKIndex.Save and attaches it to g,
// which must be the graph it was built from.
func LoadHKIndex(r io.Reader, g *Graph) (*HKIndex, error) {
	ix, err := core.ReadBinaryHKIndex(r, g.g)
	if err != nil {
		return nil, err
	}
	idx := &HKIndex{ix: ix, g: g}
	idx.scratch.New = func() any { return core.NewHKQueryScratch(ix) }
	return idx, nil
}

// Internal exposes the underlying index for this module's benchmarks.
func (ix *HKIndex) Internal() *core.HKIndex { return ix.ix }

// Verdict is a MultiIndex answer.
type Verdict = core.Verdict

// MultiIndex verdicts.
const (
	// No: certainly not reachable within k hops.
	No = core.No
	// Yes: certainly reachable within k hops.
	Yes = core.Yes
	// YesWithin: reachable within the reported rung above k, possibly not
	// within k itself (the power-of-two ladder's one-sided approximation).
	YesWithin = core.YesWithin
)

// MultiOptions configures BuildMultiIndex.
type MultiOptions struct {
	// Rungs lists the k values to index. Use ExactRungs or PowerOfTwoRungs,
	// or supply custom values. An Unbounded rung is always added.
	Rungs []int
	// Cover, Seed, Parallelism as in IndexOptions; one cover is shared by
	// all rungs.
	Cover       CoverStrategy
	Seed        uint64
	Parallelism int
}

// PowerOfTwoRungs returns 2, 4, 8, …, up to the first power of two ≥ maxK —
// the lg d ladder of Section 4.4.
func PowerOfTwoRungs(maxK int) []int { return core.PowerOfTwoKs(maxK) }

// ExactRungs returns 2, 3, …, maxK: exact answers for every k ≤ maxK.
func ExactRungs(maxK int) []int { return core.AllKs(maxK) }

// MultiIndex answers k-hop reachability for a general, per-query k.
type MultiIndex struct {
	m       *core.MultiIndex
	g       *Graph
	scratch sync.Pool
}

// BuildMultiIndex constructs one k-reach index per rung plus an Unbounded
// rung, sharing a single vertex cover.
func BuildMultiIndex(g *Graph, opts MultiOptions) (*MultiIndex, error) {
	m, err := core.BuildMulti(g.g, opts.Rungs, core.Options{
		Strategy:    opts.Cover.internal(),
		Seed:        opts.Seed,
		Parallelism: opts.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	idx := &MultiIndex{m: m, g: g}
	idx.scratch.New = func() any { return core.NewQueryScratch() }
	return idx, nil
}

// Reach answers whether t is reachable from s within k hops (k < 0 means
// classic reachability). The verdict is exact when k matches a rung or the
// bracketing rungs agree; otherwise YesWithin reports the rung k' ≤
// 2^⌈lg k⌉ within which reachability is certain. It is the concrete-type
// shorthand for ReachK; new code that may hold any Reacher should prefer
// ReachK (note ReachK treats k = 0 as UseIndexK, i.e. classic
// reachability, where Reach answers the literal 0-hop query).
func (ix *MultiIndex) Reach(s, t, k int) (Verdict, int) {
	ix.g.check(s)
	ix.g.check(t)
	sc := ix.scratch.Get().(*core.QueryScratch)
	res := ix.m.Reach(graph.Vertex(s), graph.Vertex(t), k, sc)
	ix.scratch.Put(sc)
	return res.Verdict, res.EffectiveK
}

// BatchVerdict is one ReachBatch answer. EffectiveK is the hop bound the
// verdict is certain for: the resolved query bound for exact Yes/No
// answers, or — for YesWithin — the rung above the queried k within which
// reachability is guaranteed.
type BatchVerdict struct {
	Verdict    Verdict
	EffectiveK int
}

// ReachVerdicts answers every (S, T) pair for hop bound k (k < 0 means
// classic reachability) with a worker pool; parallelism: 0 = GOMAXPROCS,
// 1 = sequential. EffectiveK is set only for YesWithin answers, matching
// Reach.
//
// Deprecated: use ReachBatch with BatchOptions.K (context cancellation,
// uniform verdicts across all Reacher variants).
func (ix *MultiIndex) ReachVerdicts(pairs []Pair, k, parallelism int) []BatchVerdict {
	res, _ := ix.m.ReachBatch(context.Background(), checkPairs(ix.g, pairs), k, parallelism)
	out := make([]BatchVerdict, len(res))
	for i, r := range res {
		out[i] = BatchVerdict{Verdict: r.Verdict, EffectiveK: r.EffectiveK}
	}
	return out
}

// Rungs returns the ladder's k values in ascending order.
func (ix *MultiIndex) Rungs() []int { return ix.m.Rungs() }

// Epoch returns the ladder's process-unique generation number (shared by
// all rungs); see Index.Epoch.
func (ix *MultiIndex) Epoch() uint64 { return ix.m.Generation() }

// SizeBytes sums the sizes of all rungs.
func (ix *MultiIndex) SizeBytes() int { return ix.m.SizeBytes() }
