package kreach_test

import (
	"bytes"
	"sync"
	"testing"

	"kreach"
)

// chain builds 0→1→…→n-1 through the public API.
func chain(n int) *kreach.Graph {
	b := kreach.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

func TestQuickstartFlow(t *testing.T) {
	b := kreach.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	ix, err := kreach.BuildIndex(g, kreach.IndexOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !ix.Reach(0, 2) {
		t.Error("0 should 2-reach 2")
	}
	if ix.Reach(0, 3) {
		t.Error("0 should not 2-reach 3")
	}
	if !ix.Reach(2, 2) {
		t.Error("self reach")
	}
}

func TestGraphAccessors(t *testing.T) {
	g := chain(5)
	if g.NumVertices() != 5 || g.NumEdges() != 4 {
		t.Fatalf("shape: %d %d", g.NumVertices(), g.NumEdges())
	}
	if !g.HasEdge(1, 2) || g.HasEdge(2, 1) {
		t.Error("HasEdge wrong")
	}
	if got := g.OutNeighbors(1); len(got) != 1 || got[0] != 2 {
		t.Errorf("OutNeighbors(1) = %v", got)
	}
	if got := g.InNeighbors(1); len(got) != 1 || got[0] != 0 {
		t.Errorf("InNeighbors(1) = %v", got)
	}
	if g.Degree(1) != 2 {
		t.Errorf("Degree(1) = %d", g.Degree(1))
	}
}

func TestVertexRangePanics(t *testing.T) {
	g := chain(3)
	ix, err := kreach.BuildIndex(g, kreach.IndexOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []func(){
		func() { g.HasEdge(-1, 0) },
		func() { g.OutNeighbors(3) },
		func() { ix.Reach(0, 99) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range vertex")
				}
			}()
			f()
		}()
	}
}

func TestConcurrentQueries(t *testing.T) {
	g := chain(200)
	ix, err := kreach.BuildIndex(g, kreach.IndexOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for s := 0; s < 150; s++ {
				want := true
				if !ix.Reach(s, s+10*(w%2)) == want {
					errs <- "wrong answer under concurrency"
					return
				}
				if ix.Reach(s, s+49) { // 49 > 10 hops away
					errs <- "false positive under concurrency"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestEdgeListRoundTripPublic(t *testing.T) {
	g := chain(6)
	var buf bytes.Buffer
	if err := g.SaveEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := kreach.LoadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != 6 || g2.NumEdges() != 5 {
		t.Fatal("round trip changed shape")
	}
}

func TestBinaryAndIndexPersistence(t *testing.T) {
	g := chain(50)
	var gbuf bytes.Buffer
	if err := g.SaveBinary(&gbuf); err != nil {
		t.Fatal(err)
	}
	g2, err := kreach.LoadBinary(&gbuf)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := kreach.BuildIndex(g2, kreach.IndexOptions{K: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var ibuf bytes.Buffer
	if err := ix.Save(&ibuf); err != nil {
		t.Fatal(err)
	}
	back, err := kreach.LoadIndex(&ibuf, g2)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 50; s += 5 {
		for d := 0; d < 12; d++ {
			if s+d < 50 && back.Reach(s, s+d) != (d <= 5) {
				t.Fatalf("loaded index wrong at (%d,%d)", s, s+d)
			}
		}
	}
}

func TestUnboundedIndex(t *testing.T) {
	g := chain(30)
	ix, err := kreach.BuildIndex(g, kreach.IndexOptions{K: kreach.Unbounded})
	if err != nil {
		t.Fatal(err)
	}
	if !ix.Reach(0, 29) {
		t.Error("classic reachability missed the chain end")
	}
	if ix.Reach(29, 0) {
		t.Error("reverse reach on a chain")
	}
	if ix.K() != kreach.Unbounded {
		t.Errorf("K = %d", ix.K())
	}
}

func TestCoverStrategies(t *testing.T) {
	b := kreach.NewBuilder(30)
	for i := 1; i < 30; i++ {
		b.AddEdge(0, i)
	}
	g := b.Build()
	for _, s := range []kreach.CoverStrategy{
		kreach.RandomEdgeCover, kreach.DegreePrioritizedCover, kreach.GreedyCover,
	} {
		ix, err := kreach.BuildIndex(g, kreach.IndexOptions{K: 2, Cover: s})
		if err != nil {
			t.Fatal(err)
		}
		if !ix.Reach(0, 15) {
			t.Errorf("strategy %d: hub cannot reach spoke", s)
		}
		if ix.CoverSize() <= 0 || ix.SizeBytes() <= 0 {
			t.Errorf("strategy %d: degenerate accounting", s)
		}
	}
	// The greedy and degree-prioritized covers must include the hub.
	ix, _ := kreach.BuildIndex(g, kreach.IndexOptions{K: 2, Cover: kreach.GreedyCover})
	if !ix.InCover(0) {
		t.Error("greedy cover misses hub")
	}
}

func TestHKIndexPublic(t *testing.T) {
	g := chain(40)
	ix, err := kreach.BuildHKIndex(g, kreach.HKOptions{H: 2, K: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !ix.Reach(0, 6) || ix.Reach(0, 7) {
		t.Error("HK reach wrong on chain")
	}
	if ix.H() != 2 || ix.K() != 6 {
		t.Error("HK accessors")
	}
	if _, err := kreach.BuildHKIndex(g, kreach.HKOptions{H: 3, K: 6}); err == nil {
		t.Error("invalid (h,k) accepted")
	}
}

func TestMultiIndexPublic(t *testing.T) {
	g := chain(40)
	ix, err := kreach.BuildMultiIndex(g, kreach.MultiOptions{
		Rungs: kreach.ExactRungs(40),
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := ix.Reach(0, 7, 7); v != kreach.Yes {
		t.Errorf("exact rung verdict = %v", v)
	}
	if v, _ := ix.Reach(0, 8, 7); v != kreach.No {
		t.Errorf("verdict = %v, want No", v)
	}
	if v, _ := ix.Reach(0, 39, -1); v != kreach.Yes {
		t.Errorf("classic verdict = %v", v)
	}
	// Power-of-two ladder gives one-sided answers between rungs.
	p2, err := kreach.BuildMultiIndex(g, kreach.MultiOptions{
		Rungs: kreach.PowerOfTwoRungs(40),
	})
	if err != nil {
		t.Fatal(err)
	}
	v, within := p2.Reach(0, 6, 5) // dist 6: not ≤5, but ≤8 → YesWithin 8
	if v != kreach.YesWithin || within != 8 {
		t.Errorf("approximate verdict = %v within %d, want YesWithin 8", v, within)
	}
}
