package kreach

import (
	"kreach/internal/core"
	"kreach/internal/graph"
)

// Execution-path names reported by ExecPathReporter and recorded in the
// server's slow-query traces. They name *how* a query was answered, not
// whether it succeeded.
const (
	// PathCacheHit: answered from a serving-layer result cache. Reported
	// only by serving layers — the indexes themselves never see cache hits.
	PathCacheHit = core.PathCacheHit
	// PathCoverRow: answered through sparse cover-row index arcs.
	PathCoverRow = core.PathCoverRow
	// PathDenseLane: answered through a dense word-parallel bitplane row.
	PathDenseLane = core.PathDenseLane
	// PathBFSFallback: answered by the exact bounded-BFS fallback.
	PathBFSFallback = core.PathBFSFallback
)

// ExecPathReporter is the optional Reacher capability for classifying which
// execution path a query takes, without running it. Serving layers probe
// for it with a type assertion to annotate slow-query traces; backends that
// cannot classify simply do not implement it.
//
// Both methods follow ReachK's hop-bound conventions (UseIndexK, negative =
// classic reachability; fixed-k variants ignore the bound — the path does
// not depend on it). Vertices must be in range; classification never runs
// the query and costs O(1).
type ExecPathReporter interface {
	// ReachPath names the path ReachK(s, t, k) would take.
	ReachPath(s, t, k int) string
	// EnumPath names the path ReachFrom (forward) or ReachInto (backward)
	// would take from v.
	EnumPath(v, k int, forward bool) string
}

// The four built-in variants are the reference reporters.
var (
	_ ExecPathReporter = (*Index)(nil)
	_ ExecPathReporter = (*HKIndex)(nil)
	_ ExecPathReporter = (*MultiIndex)(nil)
	_ ExecPathReporter = (*DynamicIndex)(nil)
)

func enumDir(forward bool) graph.Direction {
	if forward {
		return graph.Forward
	}
	return graph.Backward
}

// ReachPath implements ExecPathReporter. The hop bound is ignored — a
// fixed-k index answers every accepted bound the same way.
func (ix *Index) ReachPath(s, t, _ int) string {
	ix.g.check(s)
	ix.g.check(t)
	return ix.ix.ReachPath(graph.Vertex(s), graph.Vertex(t))
}

// EnumPath implements ExecPathReporter.
func (ix *Index) EnumPath(v, _ int, forward bool) string {
	ix.g.check(v)
	return ix.ix.EnumPath(graph.Vertex(v), enumDir(forward))
}

// ReachPath implements ExecPathReporter.
func (ix *HKIndex) ReachPath(s, t, _ int) string {
	ix.g.check(s)
	ix.g.check(t)
	return ix.ix.ReachPath(graph.Vertex(s), graph.Vertex(t))
}

// EnumPath implements ExecPathReporter.
func (ix *HKIndex) EnumPath(v, _ int, forward bool) string {
	ix.g.check(v)
	return ix.ix.EnumPath(graph.Vertex(v), enumDir(forward))
}

// ReachPath implements ExecPathReporter: the path of the rung (or rung
// pair) that would answer the normalized bound.
func (ix *MultiIndex) ReachPath(s, t, k int) string {
	ix.g.check(s)
	ix.g.check(t)
	return ix.m.ReachPath(graph.Vertex(s), graph.Vertex(t), ix.NormalizeK(k))
}

// EnumPath implements ExecPathReporter.
func (ix *MultiIndex) EnumPath(v, k int, forward bool) string {
	ix.g.check(v)
	return ix.m.EnumPath(graph.Vertex(v), ix.NormalizeK(k), enumDir(forward))
}

// ReachPath implements ExecPathReporter.
func (ix *DynamicIndex) ReachPath(s, t, _ int) string {
	ix.check(s)
	ix.check(t)
	return ix.d.ReachPath(graph.Vertex(s), graph.Vertex(t))
}

// EnumPath implements ExecPathReporter.
func (ix *DynamicIndex) EnumPath(v, _ int, forward bool) string {
	ix.check(v)
	return ix.d.EnumPath(graph.Vertex(v), enumDir(forward))
}
