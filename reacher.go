package kreach

import (
	"context"
	"errors"
	"fmt"
)

// This file is the v2 query surface: one Reacher interface implemented by
// every index variant, so serving layers, tools and future backends program
// against a single contract instead of four concrete types.
//
//	verdict, effK, err := r.ReachK(ctx, s, t, kreach.UseIndexK)
//	answers, err := r.ReachBatch(ctx, pairs, kreach.BatchOptions{})
//
// Hop-bound semantics are uniform across variants:
//
//   - k = UseIndexK (0, the zero value) answers at the Reacher's native
//     bound: the fixed k of a plain, (h,k) or dynamic index; classic
//     reachability for a MultiIndex ladder.
//   - k > 0 asks for that exact bound. Fixed-k variants answer only their
//     own k and reject anything else with a *KMismatchError; a MultiIndex
//     answers any k (exactly on a rung, one-sided between rungs).
//   - k < 0 (conventionally Unbounded) asks for classic reachability.
//
// Context semantics: ReachK checks ctx once before probing; ReachBatch
// threads ctx through the worker pool, which polls it between pairs and
// stops claiming work once it is cancelled (see ReachBatch for the partial-
// result contract).

// UseIndexK is the hop bound that selects a Reacher's native k: the fixed k
// the index was built with, or classic reachability for a MultiIndex. It is
// the zero value, so BatchOptions{} asks for the native bound.
const UseIndexK = 0

// ErrKMismatch is the sentinel wrapped by every KMismatchError; test with
// errors.Is when the offending bounds do not matter.
var ErrKMismatch = errors.New("kreach: hop bound not served by this index")

// KMismatchError reports a ReachK/ReachBatch hop bound that a fixed-k
// Reacher cannot answer. It unwraps to ErrKMismatch.
type KMismatchError struct {
	IndexK int // the bound the index answers (Unbounded = classic)
	QueryK int // the bound the query asked for
}

func (e *KMismatchError) Error() string {
	if e.IndexK == Unbounded {
		return fmt.Sprintf("kreach: index serves classic reachability (k unbounded), cannot answer k=%d", e.QueryK)
	}
	return fmt.Sprintf("kreach: index serves fixed k=%d, cannot answer k=%d", e.IndexK, e.QueryK)
}

func (e *KMismatchError) Unwrap() error { return ErrKMismatch }

// IndexKind labels a Reacher variant, as reported by Stats and by the
// serving layer's /v1/stats endpoint.
type IndexKind string

// The four built-in Reacher variants.
const (
	KindPlain   IndexKind = "kreach"  // fixed-k Index (Unbounded = classic n-reach)
	KindHK      IndexKind = "hkreach" // (h,k)-reach HKIndex
	KindMulti   IndexKind = "multi"   // MultiIndex ladder, per-query k
	KindDynamic IndexKind = "dynamic" // mutable DynamicIndex
)

// ReacherStats is a point-in-time description of a Reacher, uniform across
// variants so serving layers can report on any backend without knowing its
// concrete type. Fields that do not apply to a variant are zero: H is set
// only for (h,k) indexes, Rungs only for ladders, IndexEdges only where the
// index graph is materialized, Dynamic only for mutable indexes.
type ReacherStats struct {
	Kind       IndexKind
	K          int   // native hop bound (Unbounded for classic / a ladder's default)
	H          int   // (h,k) hop-cover radius, 0 otherwise
	Rungs      []int // ladder rungs in ascending order, nil otherwise
	Epoch      uint64
	CoverSize  int
	IndexEdges int
	SizeBytes  int
	Dynamic    *DynamicStats // live-edge and mutation counters, nil unless dynamic
}

// IndexInfo is the descriptive half of Reacher: everything a serving layer
// needs to report on an index without querying it.
type IndexInfo interface {
	// K returns the native hop bound: the k answered when ReachK is called
	// with UseIndexK. Unbounded means classic reachability (a plain n-reach
	// index, or a MultiIndex whose native answer is classic).
	K() int
	// Epoch returns the process-unique generation number; serving layers
	// embed it in cache keys so replacing an index self-invalidates them.
	Epoch() uint64
	// CoverSize returns |V_I|, the vertex-cover size.
	CoverSize() int
	// SizeBytes estimates the resident index size (excluding the graph).
	SizeBytes() int
	// Stats returns the full variant-tagged description.
	Stats() ReacherStats
}

// Reacher is the unified k-hop reachability query interface, implemented by
// Index, HKIndex, MultiIndex and DynamicIndex. All methods are safe for
// concurrent use.
type Reacher interface {
	IndexInfo

	// ReachK reports whether t is reachable from s within k hops (see the
	// package-level hop-bound semantics; UseIndexK selects the native
	// bound). The int is the hop bound the verdict is certain for: the
	// resolved k for exact Yes/No answers, or — for YesWithin — the rung
	// above k within which reachability is guaranteed. It returns a
	// *KMismatchError when this Reacher cannot answer k, or ctx.Err() if the
	// context is already done. Endpoints out of [0, NumVertices) panic,
	// mirroring slice indexing.
	ReachK(ctx context.Context, s, t, k int) (Verdict, int, error)

	// ReachBatch answers every (S, T) pair at the hop bound opts.K with a
	// worker pool, positionally aligned with pairs. If ctx is cancelled
	// mid-batch the pool stops between pairs and returns the partially
	// filled slice together with ctx.Err(); pairs never evaluated carry a
	// default verdict indistinguishable from a genuine No, so a non-nil
	// error means the slice must be discarded, not served. A
	// *KMismatchError is returned before any work when opts.K cannot be
	// answered.
	ReachBatch(ctx context.Context, pairs []Pair, opts BatchOptions) ([]BatchVerdict, error)
}

// BatchOptions configures one ReachBatch call. The zero value answers at
// the Reacher's native hop bound with GOMAXPROCS workers.
type BatchOptions struct {
	// K is the hop bound for every pair of the batch (UseIndexK = native).
	K int
	// Parallelism bounds the worker pool (0 = GOMAXPROCS, 1 = sequential).
	Parallelism int
}

// Interface compliance: the four variants are the reference Reachers.
var (
	_ Reacher = (*Index)(nil)
	_ Reacher = (*HKIndex)(nil)
	_ Reacher = (*MultiIndex)(nil)
	_ Reacher = (*DynamicIndex)(nil)
)

// boolVerdict lifts a fixed-k index's boolean answer into the shared
// verdict space: fixed-k answers are always exact.
func boolVerdict(ok bool) Verdict {
	if ok {
		return Yes
	}
	return No
}

// ResolveK maps a requested hop bound onto a fixed-k Reacher's own bound,
// following the package-level conventions: UseIndexK and the index's exact
// k always resolve, and — because every negative bound means classic
// reachability — any negative queryK resolves against a classic (Unbounded)
// index. Anything else is rejected with a *KMismatchError. It is exported
// for serving layers and custom Reacher implementations, so request
// validation and index behavior cannot drift apart.
func ResolveK(indexK, queryK int) (int, error) {
	if queryK == UseIndexK || queryK == indexK || (queryK < 0 && indexK == Unbounded) {
		return indexK, nil
	}
	return 0, &KMismatchError{IndexK: indexK, QueryK: queryK}
}

// boolVerdicts converts a fixed-k batch answer, stamping every verdict with
// the resolved bound it is exact for.
func boolVerdicts(oks []bool, effK int) []BatchVerdict {
	out := make([]BatchVerdict, len(oks))
	for i, ok := range oks {
		out[i] = BatchVerdict{Verdict: boolVerdict(ok), EffectiveK: effK}
	}
	return out
}

// ReachK implements Reacher. A plain index answers only its own k (or
// UseIndexK); the verdict is always exact.
func (ix *Index) ReachK(ctx context.Context, s, t, k int) (Verdict, int, error) {
	effK, err := ResolveK(ix.K(), k)
	if err != nil {
		return No, 0, err
	}
	if err := ctx.Err(); err != nil {
		return No, 0, err
	}
	return boolVerdict(ix.Reach(s, t)), effK, nil
}

// ReachBatch implements Reacher; see Index.ReachK for the hop-bound rules.
func (ix *Index) ReachBatch(ctx context.Context, pairs []Pair, opts BatchOptions) ([]BatchVerdict, error) {
	effK, err := ResolveK(ix.K(), opts.K)
	if err != nil {
		return nil, err
	}
	oks, err := ix.ix.ReachBatch(ctx, checkPairs(ix.g, pairs), opts.Parallelism)
	return boolVerdicts(oks, effK), err
}

// Stats implements IndexInfo.
func (ix *Index) Stats() ReacherStats {
	return ReacherStats{
		Kind:       KindPlain,
		K:          ix.K(),
		Epoch:      ix.Epoch(),
		CoverSize:  ix.CoverSize(),
		IndexEdges: ix.IndexEdges(),
		SizeBytes:  ix.SizeBytes(),
	}
}

// ReachK implements Reacher. An (h,k) index answers only its own k (or
// UseIndexK); the verdict is always exact.
func (ix *HKIndex) ReachK(ctx context.Context, s, t, k int) (Verdict, int, error) {
	effK, err := ResolveK(ix.K(), k)
	if err != nil {
		return No, 0, err
	}
	if err := ctx.Err(); err != nil {
		return No, 0, err
	}
	return boolVerdict(ix.Reach(s, t)), effK, nil
}

// ReachBatch implements Reacher; see HKIndex.ReachK for the hop-bound rules.
func (ix *HKIndex) ReachBatch(ctx context.Context, pairs []Pair, opts BatchOptions) ([]BatchVerdict, error) {
	effK, err := ResolveK(ix.K(), opts.K)
	if err != nil {
		return nil, err
	}
	oks, err := ix.ix.ReachBatch(ctx, checkPairs(ix.g, pairs), opts.Parallelism)
	return boolVerdicts(oks, effK), err
}

// Stats implements IndexInfo.
func (ix *HKIndex) Stats() ReacherStats {
	return ReacherStats{
		Kind:      KindHK,
		K:         ix.K(),
		H:         ix.H(),
		Epoch:     ix.Epoch(),
		CoverSize: ix.CoverSize(),
		SizeBytes: ix.SizeBytes(),
	}
}

// NormalizeK maps a requested hop bound onto the canonical value ReachK and
// ReachBatch actually probe: UseIndexK and negative bounds select classic
// reachability (Unbounded), and any k ≥ n−1 is classic reachability too
// (shortest paths are simple), answered exactly by the unbounded rung
// instead of one-sided. Serving layers that cache per-query-k answers must
// key them by the normalized bound — two request ks with one NormalizeK
// image always produce the same answer — and discover it through this
// method rather than re-deriving the rules.
func (ix *MultiIndex) NormalizeK(k int) int {
	if k == UseIndexK || k < 0 || k >= ix.g.NumVertices()-1 {
		return Unbounded
	}
	return k
}

// K implements IndexInfo: a ladder's native answer (the one ReachK gives
// for UseIndexK) is classic reachability, so K reports Unbounded. Per-query
// bounds are the point of the ladder — pass them to ReachK directly.
func (ix *MultiIndex) K() int { return Unbounded }

// CoverSize returns |V_I| of the vertex cover shared by every rung.
func (ix *MultiIndex) CoverSize() int { return ix.m.CoverSize() }

// ReachK implements Reacher. Any hop bound is answerable: exactly when k
// hits a rung (or the bracketing rungs agree), one-sided YesWithin
// otherwise. The int reports the bound the verdict is certain for — the
// normalized k for exact answers, the rung above k for YesWithin.
func (ix *MultiIndex) ReachK(ctx context.Context, s, t, k int) (Verdict, int, error) {
	if err := ctx.Err(); err != nil {
		return No, 0, err
	}
	k = ix.NormalizeK(k)
	verdict, within := ix.Reach(s, t, k)
	effK := k
	if verdict == YesWithin {
		effK = within
	}
	return verdict, effK, nil
}

// ReachBatch implements Reacher; every pair is answered for opts.K under
// MultiIndex.ReachK's rules.
func (ix *MultiIndex) ReachBatch(ctx context.Context, pairs []Pair, opts BatchOptions) ([]BatchVerdict, error) {
	k := ix.NormalizeK(opts.K)
	res, err := ix.m.ReachBatch(ctx, checkPairs(ix.g, pairs), k, opts.Parallelism)
	out := make([]BatchVerdict, len(res))
	for i, r := range res {
		out[i] = BatchVerdict{Verdict: r.Verdict, EffectiveK: k}
		if r.Verdict == YesWithin {
			out[i].EffectiveK = r.EffectiveK
		}
	}
	return out, err
}

// Stats implements IndexInfo.
func (ix *MultiIndex) Stats() ReacherStats {
	return ReacherStats{
		Kind:      KindMulti,
		K:         Unbounded,
		Rungs:     ix.Rungs(),
		Epoch:     ix.Epoch(),
		CoverSize: ix.CoverSize(),
		SizeBytes: ix.SizeBytes(),
	}
}

// ReachK implements Reacher: a dynamic index answers its fixed k (or
// UseIndexK) against the live edge set.
func (ix *DynamicIndex) ReachK(ctx context.Context, s, t, k int) (Verdict, int, error) {
	effK, err := ResolveK(ix.K(), k)
	if err != nil {
		return No, 0, err
	}
	if err := ctx.Err(); err != nil {
		return No, 0, err
	}
	return boolVerdict(ix.Reach(s, t)), effK, nil
}

// ReachBatch implements Reacher; see DynamicIndex.ReachK for the hop-bound
// rules. A mutation landing mid-batch is reflected by either the old or the
// new edge set per pair, never a mix within one pair.
func (ix *DynamicIndex) ReachBatch(ctx context.Context, pairs []Pair, opts BatchOptions) ([]BatchVerdict, error) {
	effK, err := ResolveK(ix.K(), opts.K)
	if err != nil {
		return nil, err
	}
	oks, err := ix.d.ReachBatch(ctx, ix.corePairs(pairs), opts.Parallelism)
	return boolVerdicts(oks, effK), err
}

// Stats implements IndexInfo; the Dynamic section carries the live-edge
// counts and cumulative mutation history (counters survive compactions).
func (ix *DynamicIndex) Stats() ReacherStats {
	st := ix.dynStats()
	return ReacherStats{
		Kind:       KindDynamic,
		K:          st.K,
		Epoch:      st.Epoch,
		CoverSize:  st.CoverSize,
		IndexEdges: st.IndexArcs,
		SizeBytes:  ix.SizeBytes(),
		Dynamic:    &st,
	}
}
