package kreach_test

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"

	"kreach"
)

// TestScratchPoolConcurrentNoContamination hammers ReachFrom/ReachInto and
// ReachBatch concurrently across all four index variants and checks every
// result against ground truth computed up front. The enumeration path
// recycles pooled BallScratch/EnumScratch state between queries, and the
// batch path shares one QueryScratch per worker; under -race this test
// catches unsynchronized pool use directly, and the oracle comparison
// catches the subtler failure where a recycled scratch leaks marks from a
// previous query (wrong membership or buckets) without any racy access.
func TestScratchPoolConcurrentNoContamination(t *testing.T) {
	const (
		n, m, k  = 80, 320, 3
		hammerGs = 2  // goroutines per variant
		iters    = 25 // query rounds per goroutine
	)
	g := randomPublicGraph(n, m, 7)
	ctx := context.Background()

	plain, err := kreach.BuildIndex(g, kreach.IndexOptions{K: k, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	hk, err := kreach.BuildHKIndex(g, kreach.HKOptions{H: 1, K: k})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := kreach.BuildMultiIndex(g, kreach.MultiOptions{Rungs: kreach.ExactRungs(4), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := kreach.NewDynamicIndex(g, kreach.DynamicOptions{K: k, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	type variant struct {
		name  string
		enum  kreach.NeighborEnumerator
		batch interface {
			ReachBatch(context.Context, []kreach.Pair, kreach.BatchOptions) ([]kreach.BatchVerdict, error)
		}
	}
	variants := []variant{
		{"plain", plain, plain},
		{"hk", hk, hk},
		{"multi", multi, multi},
		{"dynamic", dyn, dyn},
	}

	// Ground truth, computed before any concurrency: per-source oracle
	// balls in both directions, and per-variant sequential batch verdicts
	// (the variants legitimately disagree with each other — hk answers
	// (1,k)-reach — so each is compared only against itself).
	fwd := make([]map[int]kreach.DistBucket, n)
	bwd := make([]map[int]kreach.DistBucket, n)
	for v := 0; v < n; v++ {
		fwd[v] = publicOracleBall(g, v, k, true)
		bwd[v] = publicOracleBall(g, v, k, false)
	}
	var pairs []kreach.Pair
	for s := 0; s < n; s += 3 {
		for d := 1; d < n; d += 7 {
			pairs = append(pairs, kreach.Pair{S: s, T: (s + d) % n})
		}
	}
	wantBatch := make([][]kreach.BatchVerdict, len(variants))
	for i, va := range variants {
		want, err := va.batch.ReachBatch(ctx, pairs, kreach.BatchOptions{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		wantBatch[i] = want
	}

	// diffBall mirrors checkBall but reports with Errorf: t.Fatal must not
	// be called from non-test goroutines.
	diffBall := func(label string, b *kreach.Ball, want map[int]kreach.DistBucket) error {
		if b.Total != len(want) || len(b.Neighbors) != len(want) {
			return fmt.Errorf("%s: total=%d len=%d, oracle %d", label, b.Total, len(b.Neighbors), len(want))
		}
		for _, nb := range b.Neighbors {
			wb, ok := want[nb.ID]
			if !ok || wb != nb.Bucket {
				return fmt.Errorf("%s: member %d bucket %v, oracle (%v, present=%v)", label, nb.ID, nb.Bucket, wb, ok)
			}
		}
		return nil
	}

	var wg sync.WaitGroup
	errc := make(chan error, len(variants)*hammerGs)
	for vi, va := range variants {
		for gi := 0; gi < hammerGs; gi++ {
			wg.Add(1)
			go func(vi int, va variant, seed uint64) {
				defer wg.Done()
				rng := rand.New(rand.NewPCG(seed, 0x5c4a7c4))
				for it := 0; it < iters; it++ {
					src := rng.IntN(n)
					from, err := va.enum.ReachFrom(ctx, src, k, kreach.EnumOptions{})
					if err != nil {
						errc <- err
						return
					}
					if err := diffBall(fmt.Sprintf("%s ReachFrom src=%d", va.name, src), from, fwd[src]); err != nil {
						errc <- err
						return
					}
					dst := rng.IntN(n)
					into, err := va.enum.ReachInto(ctx, dst, k, kreach.EnumOptions{})
					if err != nil {
						errc <- err
						return
					}
					if err := diffBall(fmt.Sprintf("%s ReachInto t=%d", va.name, dst), into, bwd[dst]); err != nil {
						errc <- err
						return
					}
					got, err := va.batch.ReachBatch(ctx, pairs, kreach.BatchOptions{Parallelism: 1 + it%4})
					if err != nil {
						errc <- err
						return
					}
					for i := range got {
						if got[i] != wantBatch[vi][i] {
							errc <- fmt.Errorf("%s batch pair %+v = %+v, sequential said %+v",
								va.name, pairs[i], got[i], wantBatch[vi][i])
							return
						}
					}
				}
			}(vi, va, uint64(vi*hammerGs+gi+1))
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
